package adversary

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"atomemu/internal/core"
	"atomemu/internal/workload"
)

// Options configures a Search. The zero value gets sensible defaults.
type Options struct {
	// Seed drives the whole search: corpus order, schedule seeds and every
	// mutation. The same seed replays the same search.
	Seed uint64
	// Runs bounds how many scenarios are executed (default 64).
	Runs int
	// MaxSteps is the per-scenario step budget (default Scenario default).
	MaxSteps uint64
	// Targets restricts the search to named workloads (default: the six
	// adversary targets — stack plus the five lock-free structures).
	Targets []string
	// Schemes restricts the emulation schemes explored (default: all).
	Schemes []string
	// IncludeFree also explores free-running mode (block chaining, tiered
	// execution). Free findings are re-established in step mode before
	// they count; pure free wedges are recorded but not minimized.
	IncludeFree bool
	// MinimizeBudget bounds the re-runs spent shrinking each finding
	// (default 200; 0 keeps the default, negative disables minimization).
	MinimizeBudget int
	// Log, when non-nil, receives one line per executed scenario.
	Log io.Writer
}

// DefaultTargets is the adversary's standard workload set.
func DefaultTargets() []string {
	return []string{"stack", "msqueue", "wsdeque", "seqlock", "hazard", "futexpc"}
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 64
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = defaultMaxSteps
	}
	if len(o.Targets) == 0 {
		o.Targets = DefaultTargets()
	}
	if len(o.Schemes) == 0 {
		o.Schemes = core.SchemeNames()
	}
	if o.MinimizeBudget == 0 {
		o.MinimizeBudget = 200
	}
	return o
}

// Record is one executed scenario with its judged outcome.
type Record struct {
	Index       int
	Scenario    Scenario
	Outcome     *Outcome
	Expected    bool
	Why         string
	NewCoverage bool
}

// Finding is an unexpected failure, optionally with its minimized form.
type Finding struct {
	Record
	// Minimized is the shrunk scenario (nil when minimization was disabled
	// or the failure did not reproduce deterministically in step mode).
	Minimized  *Scenario
	MinOutcome *Outcome
}

// Report summarises a finished search.
type Report struct {
	Seed     uint64
	Runs     int
	Records  []Record
	Findings []Finding
	// KnownLivelocks counts rediscoveries of the expected strict-paper HTM
	// abort livelock (the paper's fig. 11 pathology). CI asserts this is
	// nonzero: the search must find the one bug we know is there.
	KnownLivelocks int
	// Coverage is the number of distinct behaviour signatures observed.
	Coverage int
}

// Search runs a seed-driven, coverage-guided exploration of the scenario
// space and returns everything it executed plus its findings.
func Search(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(int64(opts.Seed ^ 0xda3e39cb94b95bdb)))
	rep := &Report{Seed: opts.Seed, Runs: opts.Runs}

	corpus := seedCorpus(opts)
	seen := make(map[string]bool)
	// pool holds scenarios that produced new coverage: mutation bases.
	pool := append([]Scenario(nil), corpus...)

	for i := 0; i < opts.Runs; i++ {
		var s Scenario
		if i < len(corpus) {
			s = corpus[i]
		} else {
			s = mutate(rng, pool[rng.Intn(len(pool))], opts)
		}
		o, err := RunScenario(s)
		if err != nil {
			// A generated scenario failed validation — a search bug; surface it.
			return nil, fmt.Errorf("adversary: run %d (%s): %w", i, s.ID(), err)
		}
		expected, why := Expectation(s, o)
		key := coverageKey(s, o)
		rec := Record{Index: i, Scenario: s, Outcome: o, Expected: expected, Why: why, NewCoverage: !seen[key]}
		if !seen[key] {
			seen[key] = true
			pool = append(pool, s)
		}
		rep.Records = append(rep.Records, rec)
		if o.Class == ClassLivelock && expected {
			rep.KnownLivelocks++
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "run %3d: %-9s expected=%-5v %s\n", i, o.Class, expected, s.ID())
		}
		if !expected {
			f := Finding{Record: rec}
			if opts.MinimizeBudget > 0 {
				if min, mo, ok := establishAndMinimize(s, o, opts.MinimizeBudget); ok {
					f.Minimized = &min
					f.MinOutcome = mo
				}
			}
			rep.Findings = append(rep.Findings, f)
		}
	}
	rep.Coverage = len(seen)
	return rep, nil
}

// establishAndMinimize re-establishes a finding deterministically in step
// mode (free-mode findings get a step-mode rerun with the same knobs) and
// shrinks it. ok is false when the failure does not reproduce.
func establishAndMinimize(s Scenario, o *Outcome, budget int) (Scenario, *Outcome, bool) {
	s = s.withDefaults()
	if s.Mode != ModeStep {
		s.Mode = ModeStep
		s.ChainBudget = 0
		s.Tiered = false
		ro, err := RunScenario(s)
		if err != nil || !sameSignature(o, ro) {
			return s, nil, false
		}
		o = ro
	}
	min, mo := Minimize(s, o, budget)
	return min, mo, true
}

// seedCorpus builds the deterministic starting scenarios. The very first
// one is the known strict-paper HTM livelock configuration: the search
// must rediscover fig. 11 within any budget that runs at least one
// scenario, which is what the CI smoke job asserts.
func seedCorpus(opts Options) []Scenario {
	base := Scenario{Ops: 64, MaxSteps: opts.MaxSteps, Seed: opts.Seed}
	have := func(scheme string) bool {
		for _, s := range opts.Schemes {
			if s == scheme {
				return true
			}
		}
		return false
	}
	pickScheme := func(prefs ...string) string {
		for _, p := range prefs {
			if have(p) {
				return p
			}
		}
		return opts.Schemes[0]
	}

	var out []Scenario
	firstTarget := opts.Targets[0]
	if htmScheme := pickScheme("pico-htm", "hst-htm"); strings.Contains(htmScheme, "htm") {
		s := base
		s.Target, s.Scheme, s.StrictPaper, s.Threads = firstTarget, htmScheme, true, 12
		out = append(out, s)
	}
	for _, tgt := range opts.Targets {
		strong := pickScheme("hst", "pst", "pico-st")
		for _, v := range []struct {
			scheme  string
			threads int
			strict  bool
			faults  []FaultRule
			wd      int64
		}{
			{strong, 4, false, nil, 0},
			{pickScheme("pico-cas", strong), 8, false, nil, 0},
			{pickScheme("hst-weak", strong), 6, false, nil, 0},
			// Only hst-weak locks hash entries around SC, so the stuck-lock
			// site lives there.
			{pickScheme("hst-weak", strong), 4, false, []FaultRule{{Op: "hash-unlock", Action: "stick-lock", After: 40, Count: 1}}, 4096},
			{pickScheme("hst-htm", "pico-htm", strong), 4, false, []FaultRule{{Op: "txn-commit", Action: "abort", Count: 50}}, 0},
			{strong, 4, false, []FaultRule{{Op: "mem-load", Action: "fault", After: 5000, Count: 1}}, 0},
		} {
			s := base
			s.Target, s.Scheme, s.Threads, s.StrictPaper = tgt, v.scheme, v.threads, v.strict
			s.Faults = v.faults
			s.WatchdogSCFails = v.wd
			if tg, ok := workload.TargetByName(tgt); ok && s.Threads < tg.MinThreads {
				s.Threads = tg.MinThreads
			}
			out = append(out, s)
		}
	}
	return out
}

var threadChoices = []int{1, 2, 3, 4, 6, 8, 12, 16}
var faultOps = []string{"txn-begin", "txn-commit", "hash-unlock", "mem-load", "mem-store"}

// faultActions mirrors faultinject's op/action compatibility matrix.
var faultActions = map[string][]string{
	"txn-begin":   {"abort"},
	"txn-commit":  {"abort", "poison"},
	"hash-unlock": {"stick-lock"},
	"mem-load":    {"fault"},
	"mem-store":   {"fault"},
}

// mutate derives a new scenario from a base with 1–2 random edits.
func mutate(rng *rand.Rand, s Scenario, opts Options) Scenario {
	s = s.withDefaults()
	s.Faults = append([]FaultRule(nil), s.Faults...)
	edits := 1 + rng.Intn(2)
	for e := 0; e < edits; e++ {
		switch rng.Intn(12) {
		case 0: // reseed the schedule
			s.Seed = rng.Uint64()
		case 1:
			s.Threads = threadChoices[rng.Intn(len(threadChoices))]
			if tg, ok := workload.TargetByName(s.Target); ok && s.Threads < tg.MinThreads {
				s.Threads = tg.MinThreads
			}
		case 2:
			if rng.Intn(2) == 0 {
				s.Ops *= 2
			} else {
				s.Ops /= 2
			}
			if s.Ops < 16 {
				s.Ops = 16
			}
			if s.Ops > 2048 {
				s.Ops = 2048
			}
		case 3:
			s.Scheme = opts.Schemes[rng.Intn(len(opts.Schemes))]
		case 4:
			s.StrictPaper = !s.StrictPaper
		case 5:
			s.HTMInterference = []int{0, 4, 8, 16}[rng.Intn(4)]
		case 6:
			s.HashBits = []uint{0, 6, 10}[rng.Intn(3)]
		case 7:
			s.WatchdogSCFails = []int64{0, 1024, 8192}[rng.Intn(3)]
		case 8:
			s.QuantumMax = []int{1, 2, 4, 8, 16}[rng.Intn(5)]
		case 9: // add a fault rule
			if len(s.Faults) < 3 {
				op := faultOps[rng.Intn(len(faultOps))]
				acts := faultActions[op]
				f := FaultRule{
					Op:     op,
					Action: acts[rng.Intn(len(acts))],
					After:  uint64(rng.Intn(2000)),
					Count:  uint64(1 + rng.Intn(100)),
				}
				if !strings.HasPrefix(op, "mem-") && rng.Intn(2) == 0 {
					f.TID = uint32(1 + rng.Intn(s.Threads))
				}
				s.Faults = append(s.Faults, f)
			}
		case 10: // drop a fault rule
			if len(s.Faults) > 0 {
				i := rng.Intn(len(s.Faults))
				s.Faults = append(s.Faults[:i], s.Faults[i+1:]...)
			}
		case 11: // toggle free mode to reach the chaining/tiering paths
			if opts.IncludeFree && s.Mode == ModeStep {
				s.Mode = ModeFree
				s.ChainBudget = []int{0, 8, 32}[rng.Intn(3)]
				s.Tiered = rng.Intn(2) == 0
			} else {
				s.Mode = ModeStep
				s.ChainBudget = 0
				s.Tiered = false
			}
		}
	}
	return s
}

// coverageKey signatures a run's behaviour for novelty detection: the
// shape of the configuration plus log2-bucketed event counts and the set
// of SC-failure reasons observed.
func coverageKey(s Scenario, o *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%s|t%d|strict%v|f%d", s.Target, s.Scheme, s.Mode, o.Class, s.Threads, s.StrictPaper, len(s.Faults))
	for _, k := range []string{"sc_fails", "hash_conflicts", "htm_aborts", "scheme_fallbacks", "watchdog_trips", "excl_sections"} {
		fmt.Fprintf(&b, "|%s=%d", k, log2bucket(o.Census[k]))
	}
	var reasons []string
	for k := range o.Census {
		if strings.HasPrefix(k, "sc_fail_") {
			reasons = append(reasons, strings.TrimPrefix(k, "sc_fail_"))
		}
	}
	sort.Strings(reasons)
	b.WriteString("|r:" + strings.Join(reasons, ","))
	fired := 0
	for _, rs := range o.RuleStats {
		if rs.Fired > 0 {
			fired++
		}
	}
	fmt.Fprintf(&b, "|fired%d", fired)
	return b.String()
}

func log2bucket(v uint64) int {
	b := 0
	for v > 0 {
		v >>= 1
		b++
	}
	return b
}

// WriteCSV emits the full run log with a commented header recording the
// search seed, so any row can be replayed.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# seed=%d\n# runs=%d\n# findings=%d known_livelocks=%d coverage=%d\n",
		r.Seed, r.Runs, len(r.Findings), r.KnownLivelocks, r.Coverage); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "idx,target,scheme,mode,threads,ops,sched_seed,quantum,strict,faults,class,expected,why,steps,trace_hash,sc_fails,htm_aborts,new_coverage,oracle_err"); err != nil {
		return err
	}
	for _, rec := range r.Records {
		s, o := rec.Scenario, rec.Outcome
		var fs []string
		for _, f := range s.Faults {
			fs = append(fs, f.String())
		}
		_, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%d,%d,%v,%s,%s,%v,%s,%d,%016x,%d,%d,%v,%s\n",
			rec.Index, s.Target, s.Scheme, s.Mode, s.Threads, s.Ops, s.Seed, s.QuantumMax, s.StrictPaper,
			csvQuote(strings.Join(fs, ";")), o.Class, rec.Expected, csvQuote(rec.Why), o.Steps, o.TraceHash,
			o.Census["sc_fails"], o.Census["htm_aborts"], rec.NewCoverage, csvQuote(o.OracleErr))
		if err != nil {
			return err
		}
	}
	return nil
}

// csvQuote keeps free-text fields on one comma-free token.
func csvQuote(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}
