package adversary

import (
	"path/filepath"
	"strings"
	"testing"
)

// livelockScenario is the known strict-paper HTM pathology (fig. 11):
// enough threads that the interference model aborts nearly every
// transaction, and StrictPaper retries without backoff until the abort
// streak trips the livelock detector.
func livelockScenario() Scenario {
	return Scenario{
		Target:      "stack",
		Scheme:      "pico-htm",
		Mode:        ModeStep,
		Threads:     12,
		Ops:         64,
		Seed:        7,
		StrictPaper: true,
	}
}

func TestStepModeCleanRun(t *testing.T) {
	o, err := RunScenario(Scenario{Target: "msqueue", Scheme: "hst", Threads: 4, Ops: 48, Seed: 1, MaxSteps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if o.Class != ClassOK {
		t.Fatalf("class = %s (err=%q oracle=%q), want ok", o.Class, o.Err, o.OracleErr)
	}
	if o.Steps == 0 || o.TraceHash == 0 {
		t.Fatalf("implausible outcome: steps=%d hash=%016x", o.Steps, o.TraceHash)
	}
	if exp, why := Expectation(livelockScenario(), o); !exp {
		t.Fatalf("clean run judged unexpected: %s", why)
	}
}

func TestStepModeDeterminism(t *testing.T) {
	// The core repro guarantee: the same scenario replays to the same
	// trace hash, across targets that park/wake (futexpc), spin on SC
	// (seqlock) and fail via livelock.
	scenarios := []Scenario{
		{Target: "stack", Scheme: "hst", Threads: 4, Ops: 40, Seed: 11, MaxSteps: 2_000_000},
		{Target: "seqlock", Scheme: "hst-weak", Threads: 4, Ops: 30, Seed: 99, QuantumMax: 3, MaxSteps: 2_000_000},
		{Target: "futexpc", Scheme: "pst", Threads: 4, Ops: 24, Seed: 5, MaxSteps: 4_000_000},
		livelockScenario(),
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.Target+"/"+s.Scheme, func(t *testing.T) {
			t.Parallel()
			a, err := RunScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			if a.Class != b.Class || a.Steps != b.Steps || a.TraceHash != b.TraceHash {
				t.Fatalf("nondeterministic replay:\n  run1: class=%s steps=%d hash=%016x\n  run2: class=%s steps=%d hash=%016x",
					a.Class, a.Steps, a.TraceHash, b.Class, b.Steps, b.TraceHash)
			}
		})
	}
}

func TestStepModeSeedChangesSchedule(t *testing.T) {
	base := Scenario{Target: "stack", Scheme: "hst", Threads: 4, Ops: 40, Seed: 1, MaxSteps: 2_000_000}
	a, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Seed = 2
	b, err := RunScenario(other)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash == b.TraceHash {
		t.Fatal("different seeds produced identical traces; the schedule is not seed-driven")
	}
}

func TestLivelockRediscovery(t *testing.T) {
	// The adversary must reproduce the paper's fig. 11 HTM livelock from
	// a cold start, and classify it as an expected (known) failure.
	o, err := RunScenario(livelockScenario())
	if err != nil {
		t.Fatal(err)
	}
	if o.Class != ClassLivelock {
		t.Fatalf("class = %s (err=%q), want livelock", o.Class, o.Err)
	}
	if !strings.Contains(o.Err, "livelock") {
		t.Fatalf("error %q does not mention livelock", o.Err)
	}
	exp, why := Expectation(livelockScenario(), o)
	if !exp {
		t.Fatalf("strict-paper HTM livelock judged unexpected: %s", why)
	}
	if !strings.Contains(why, "fig. 11") {
		t.Fatalf("expectation reason %q does not cite the paper figure", why)
	}

	// Without StrictPaper the same configuration must recover (bounded
	// retry + backoff + fallback), so a livelock there would be a finding.
	relaxed := livelockScenario()
	relaxed.StrictPaper = false
	ro, err := RunScenario(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Class == ClassLivelock {
		t.Fatal("livelock persists without StrictPaper; bounded fallback is broken")
	}
}

func TestWedgeOnTinyBudget(t *testing.T) {
	s := Scenario{Target: "stack", Scheme: "hst", Threads: 4, Ops: 64, Seed: 3, MaxSteps: 500}
	o, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Class != ClassWedge {
		t.Fatalf("class = %s, want wedge on a 500-step budget", o.Class)
	}
	if exp, _ := Expectation(s, o); !exp {
		t.Fatal("a wedge must be judged inconclusive, not a finding")
	}
}

func TestFaultInjectionOutcomes(t *testing.T) {
	t.Run("mem-fault", func(t *testing.T) {
		t.Parallel()
		s := Scenario{
			Target: "stack", Scheme: "hst", Threads: 4, Ops: 64, Seed: 9, MaxSteps: 2_000_000,
			Faults: []FaultRule{{Op: "mem-load", Action: "fault", After: 500, Count: 1}},
		}
		o, err := RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if o.Class != ClassGuestFault {
			t.Fatalf("class = %s (err=%q), want guest-fault", o.Class, o.Err)
		}
		if exp, _ := Expectation(s, o); !exp {
			t.Fatal("an injected fault's crash must be expected")
		}
		if len(o.RuleStats) != 1 || o.RuleStats[0].Fired != 1 {
			t.Fatalf("rule stats %+v, want exactly one fired rule", o.RuleStats)
		}
	})
	t.Run("stuck-lock", func(t *testing.T) {
		t.Parallel()
		// A stuck hash-entry lock starves every aliasing LL. Only hst-weak
		// uses the entry itself as an SC lock, so that is where the
		// hash-unlock site lives; its bounded SetWait spin must convert the
		// starvation into a watchdog diagnostic, not an infinite wedge.
		s := Scenario{
			Target: "seqlock", Scheme: "hst-weak", Threads: 4, Ops: 200, Seed: 4,
			MaxSteps: 4_000_000, WatchdogSCFails: 2048, HashSpinBudget: 2048,
			Faults: []FaultRule{{Op: "hash-unlock", Action: "stick-lock", After: 30, Count: 1}},
		}
		o, err := RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if o.Class != ClassWatchdog && o.Class != ClassWedge {
			t.Fatalf("class = %s (err=%q), want watchdog or wedge", o.Class, o.Err)
		}
		if exp, _ := Expectation(s, o); !exp {
			t.Fatal("starvation under an injected stuck lock must be expected")
		}
	})
}

func TestRunScenarioRejectsBadInput(t *testing.T) {
	cases := []Scenario{
		{Target: "nope", Scheme: "hst"},
		{Target: "stack", Scheme: "hst", Faults: []FaultRule{{Op: "txn-begin", Action: "fault"}}},
		{Target: "stack", Scheme: "hst", Faults: []FaultRule{{Op: "mem-load", Action: "fault", TID: 2}}},
		{Target: "stack", Scheme: "hst", Mode: "warp"},
	}
	for _, s := range cases {
		if _, err := RunScenario(s); err == nil {
			t.Errorf("scenario %+v accepted, want error", s)
		}
	}
}

func TestFreeModeRuns(t *testing.T) {
	// Free mode is nondeterministic but its classification must be stable
	// for a clean workload, and it reaches the chaining/tiering paths
	// that step mode forces off.
	s := Scenario{
		Target: "stack", Scheme: "hst", Mode: ModeFree, Threads: 4, Ops: 64,
		MaxSteps: 50_000_000, ChainBudget: 8, Tiered: true,
	}
	o, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Class != ClassOK {
		t.Fatalf("class = %s (err=%q oracle=%q), want ok", o.Class, o.Err, o.OracleErr)
	}
}

func TestMinimizeShrinksLivelock(t *testing.T) {
	// Start from a deliberately noisy version of the livelock scenario:
	// an irrelevant fault rule, perturbed knobs, surplus ops. The
	// minimizer must strip the noise while preserving the signature.
	noisy := livelockScenario()
	noisy.Ops = 512
	noisy.HashBits = 10
	noisy.WatchdogSCFails = 8192
	noisy.Faults = []FaultRule{{Op: "mem-store", Action: "fault", After: 1 << 40}} // never fires
	want, err := RunScenario(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if want.Class != ClassLivelock {
		t.Fatalf("noisy scenario class = %s, want livelock", want.Class)
	}

	min, mo := Minimize(noisy, want, 60)
	if !sameSignature(want, mo) {
		t.Fatalf("minimized outcome %s lost the signature %s", mo.Class, want.Class)
	}
	if len(min.Faults) != 0 {
		t.Errorf("irrelevant fault rule survived minimization: %+v", min.Faults)
	}
	if min.HashBits != 0 || min.WatchdogSCFails != 0 {
		t.Errorf("irrelevant knobs survived: hashbits=%d wd=%d", min.HashBits, min.WatchdogSCFails)
	}
	if min.Ops > noisy.Ops/2 {
		t.Errorf("ops not shrunk: %d (from %d)", min.Ops, noisy.Ops)
	}
	if !min.StrictPaper {
		t.Error("StrictPaper was dropped but the livelock needs it")
	}
	if min.MaxSteps >= defaultMaxSteps {
		t.Errorf("step budget not tightened: %d", min.MaxSteps)
	}
}

func TestReproRoundTrip(t *testing.T) {
	s := livelockScenario()
	o, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRepro(s, o, "strict-paper HTM abort livelock (paper fig. 11)")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "livelock.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Scenario.ID() != s.withDefaults().ID() {
		t.Fatalf("scenario did not round-trip: %s vs %s", loaded.Scenario.ID(), s.withDefaults().ID())
	}
	ro, err := loaded.Replay()
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if ro.TraceHash != o.TraceHash {
		t.Fatalf("replay hash %016x, recorded %016x", ro.TraceHash, o.TraceHash)
	}

	// Tampering with the pinned hash must make Replay fail loudly.
	loaded.TraceHash = "00000000deadbeef"
	if _, err := loaded.Replay(); err == nil {
		t.Fatal("replay accepted a wrong trace hash")
	}
}

func TestReproRejectsFreeMode(t *testing.T) {
	o := &Outcome{Class: ClassOK}
	if _, err := NewRepro(Scenario{Target: "stack", Scheme: "hst", Mode: ModeFree}, o, ""); err == nil {
		t.Fatal("free-mode repro accepted")
	}
}

func TestSearchRediscoversLivelockAndWritesCSV(t *testing.T) {
	// A tiny fixed-seed search must (a) rediscover the known livelock via
	// its corpus, (b) produce zero unexpected findings on a healthy
	// build, and (c) emit a CSV whose header records the seed.
	rep, err := Search(Options{Seed: 42, Runs: 8, MinimizeBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.KnownLivelocks == 0 {
		t.Fatal("search did not rediscover the strict-paper HTM livelock")
	}
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding: %s — %s (err=%q oracle=%q)",
			f.Scenario.ID(), f.Why, f.Outcome.Err, f.Outcome.OracleErr)
	}
	if rep.Coverage < 2 {
		t.Fatalf("coverage = %d, implausibly low", rep.Coverage)
	}
	var sb strings.Builder
	if err := rep.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# seed=42\n") {
		t.Fatalf("CSV header missing seed: %q", out[:60])
	}
	if strings.Count(out, "\n") < 8+4 {
		t.Fatalf("CSV too short:\n%s", out)
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for c := ClassOK; c <= ClassError; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("nope"); err == nil {
		t.Error("ParseClass accepted junk")
	}
}
