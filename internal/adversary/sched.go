package adversary

import (
	"errors"
	"math/rand"

	"atomemu/internal/engine"
)

// ErrWedged is the interrupt the stepper delivers when the step budget
// runs out or every runnable vCPU is parked with nobody left to wake it.
// A wedged run is inconclusive, never a finding by itself: the budget may
// simply have been too small for the schedule.
var ErrWedged = errors.New("adversary: step budget exhausted before completion")

// The stepper drives a step-mode machine deterministically. Each vCPU
// gets a worker goroutine, but at most one worker ever executes guest
// instructions at a time: the scheduler grants a quantum, the worker
// steps until the quantum ends (or it halts, parks, or the machine
// stops), then reports back. Blocking guest syscalls (futex, barrier,
// join) park the worker's goroutine inside engine.CPU.Step; the
// engine.SchedHook tells the scheduler about parks and wakes so it can
// keep granting quanta without ever racing two guest instructions.
//
// Determinism argument: scheduling decisions are taken only at
// quiescence — no quantum outstanding and no woken worker still
// returning from its syscall. A woken worker executes no further guest
// instructions before ending its slice (the Parked flag breaks the step
// loop), so the only concurrency between workers is syscall-return
// bookkeeping that the guest cannot observe. With decisions driven by a
// seeded rand over a state that is itself a deterministic function of
// the grant history, the whole interleaving replays from the seed.

type evKind uint8

const (
	evDone   evKind = iota // a granted quantum ended
	evParked               // a worker parked inside a blocking syscall
	evWoken                // a wake was delivered to n parked workers
)

type schedEvent struct {
	kind   evKind
	tid    uint32
	used   int  // evDone: guest instructions actually executed
	halted bool // evDone: the vCPU halted during the slice
	n      int  // evWoken: wakes delivered
}

type workerState uint8

const (
	wsIdle workerState = iota
	wsRunning
	wsParked
	wsHalted
)

type stepWorker struct {
	tid   uint32
	cpu   *engine.CPU
	grant chan int
	state workerState // owned by the scheduler goroutine
	// wasParked is worker-goroutine-local: set by the Parked hook, which
	// the engine invokes on the parking vCPU's own goroutine, and read by
	// the step loop right after Step returns. It must not live on the
	// scheduler side — a wake can race the scheduler's view of a park,
	// but never the parking goroutine's own flag.
	wasParked bool
}

type stepper struct {
	m       *engine.Machine
	events  chan schedEvent
	workers map[uint32]*stepWorker
	order   []*stepWorker // by spawn order (== tid order)
}

func newStepper() *stepper {
	return &stepper{
		events:  make(chan schedEvent),
		workers: make(map[uint32]*stepWorker),
	}
}

// Parked implements engine.SchedHook. Runs on the parking worker's own
// goroutine, after the park is registered but before it sleeps.
func (st *stepper) Parked(tid uint32) {
	if w := st.workers[tid]; w != nil {
		w.wasParked = true
	}
	st.events <- schedEvent{kind: evParked, tid: tid}
}

// Woken implements engine.SchedHook. Runs on the waker's goroutine
// before the wakes are delivered (possibly under machine locks, so this
// must only send to the always-receiving scheduler).
func (st *stepper) Woken(n int) {
	st.events <- schedEvent{kind: evWoken, n: n}
}

func (w *stepWorker) loop(st *stepper) {
	for n := range w.grant {
		used, halted := 0, false
		for used < n {
			w.wasParked = false
			alive, _ := w.cpu.Step() // a fatal error also reports !alive
			used++
			if !alive {
				halted = true
				break
			}
			if w.wasParked {
				// The step blocked, was woken, and returned: end the slice
				// before executing any further guest instruction, so that
				// the wake-up point is a scheduling decision.
				break
			}
			if st.m.Stopped() {
				// Step does not check the stop flag itself; without this a
				// worker could run guest code (and re-park!) after exit_group.
				break
			}
		}
		st.events <- schedEvent{kind: evDone, tid: w.tid, used: used, halted: halted}
	}
}

// run drives the machine to completion (all vCPUs halted, machine
// stopped, or budget exhausted). It returns the total guest instructions
// stepped and whether the run wedged (budget out / scheduler starvation).
func (st *stepper) run(m *engine.Machine, cpus []*engine.CPU, seed uint64, quantumMax int, maxSteps uint64) (uint64, bool) {
	st.m = m
	for _, c := range cpus {
		w := &stepWorker{tid: c.TID(), cpu: c, grant: make(chan int)}
		st.workers[w.tid] = w
		st.order = append(st.order, w)
	}
	for _, w := range st.order {
		go w.loop(st)
	}
	defer func() {
		for _, w := range st.order {
			close(w.grant)
		}
	}()

	rng := rand.New(rand.NewSource(int64(seed ^ 0x9e3779b97f4a7c15)))
	var granted *stepWorker
	pendingReturns := 0 // wakes delivered whose workers haven't reported back
	var total uint64

	recv := func() {
		ev := <-st.events
		switch ev.kind {
		case evDone:
			w := st.workers[ev.tid]
			total += uint64(ev.used)
			if w.state == wsParked && pendingReturns > 0 {
				// A parked worker reporting back means its wake arrived.
				pendingReturns--
			}
			if granted == w {
				granted = nil
			}
			if ev.halted {
				w.state = wsHalted
			} else {
				w.state = wsIdle
			}
		case evParked:
			w := st.workers[ev.tid]
			if w == nil {
				// A guest-spawned vCPU the stepper does not manage (none of
				// the current targets spawn, but stay robust).
				return
			}
			w.state = wsParked
			if granted == w {
				granted = nil
			}
		case evWoken:
			pendingReturns += ev.n
		}
	}

	// drain waits for every worker to leave the running/parked states.
	// It is entered only once the machine is stopped (or interrupted):
	// stop() wakes all registered waiters, so each parked worker's slice
	// ends and its evDone arrives. Counter accounting is unreliable here
	// (stop-wakes bypass the Woken hook), hence the state-based loop.
	drain := func() {
		for {
			busy := false
			for _, w := range st.order {
				if w.state == wsRunning || w.state == wsParked {
					busy = true
					break
				}
			}
			if !busy {
				return
			}
			recv()
		}
	}

	for {
		// Collect events until quiescent: no quantum outstanding and every
		// delivered wake accounted for. If the machine stops mid-slice we
		// wait only for the grantee, then switch to state-based draining.
		for granted != nil || pendingReturns > 0 {
			if m.Stopped() && granted == nil {
				break
			}
			recv()
		}
		if m.Stopped() {
			drain()
			return total, false
		}

		runnable := runnable(st.order)
		if len(runnable) == 0 {
			allHalted := true
			for _, w := range st.order {
				if w.state != wsHalted {
					allHalted = false
					break
				}
			}
			if allHalted {
				return total, false
			}
			// Parked workers with no wake in flight and nobody running: the
			// engine's own deadlock detector should have fired; if it did
			// not (e.g. an injected stuck lock left a spinner mid-quantum
			// earlier), declare a wedge and unwind.
			m.Interrupt(ErrWedged)
			drain()
			return total, true
		}
		if total >= maxSteps {
			m.Interrupt(ErrWedged)
			drain()
			return total, true
		}

		w := runnable[rng.Intn(len(runnable))]
		k := 1 + rng.Intn(quantumMax)
		w.state = wsRunning
		granted = w
		w.grant <- k
	}
}

// runnable returns the idle workers in tid order (st.order is already
// sorted by spawn order, which assigns ascending tids).
func runnable(order []*stepWorker) []*stepWorker {
	out := make([]*stepWorker, 0, len(order))
	for _, w := range order {
		if w.state == wsIdle {
			out = append(out, w)
		}
	}
	return out
}
