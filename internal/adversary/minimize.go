package adversary

import (
	"atomemu/internal/workload"
)

// sameSignature decides whether a candidate reproduces a finding: same
// outcome class and same oracle verdict. Error text and trace hashes are
// deliberately excluded — a smaller scenario fails at a different point
// with a different trace, and that is the whole point of shrinking.
func sameSignature(want, got *Outcome) bool {
	return got != nil && got.Class == want.Class && got.OracleViolated() == want.OracleViolated()
}

// Minimize shrinks a failing step-mode scenario with a ddmin-style greedy
// fixpoint: drop fault rules one at a time, halve the thread count and
// the per-thread op count, normalize perturbed engine knobs back to their
// defaults, and finally tighten the step budget to just past the observed
// failure. Every candidate is re-run and accepted only if it reproduces
// the finding's signature. budget bounds the total re-runs.
//
// The result is the smallest accepted scenario and its outcome (which is
// the outcome to pin in a repro: its trace hash belongs to the minimized
// scenario, not the original).
func Minimize(s Scenario, want *Outcome, budget int) (Scenario, *Outcome) {
	best := s.withDefaults()
	bestO := want
	runs := 0
	try := func(c Scenario) bool {
		if runs >= budget {
			return false
		}
		runs++
		o, err := RunScenario(c)
		if err != nil || !sameSignature(want, o) {
			return false
		}
		best = c.withDefaults()
		bestO = o
		return true
	}

	minThreads := 1
	if tg, ok := workload.TargetByName(best.Target); ok && tg.MinThreads > 1 {
		minThreads = tg.MinThreads
	}

	for changed := true; changed && runs < budget; {
		changed = false

		// Pass 1: drop fault rules (a rule that never fired, or whose
		// injection is irrelevant to the failure, goes away).
		for i := 0; i < len(best.Faults); {
			c := best
			c.Faults = append(append([]FaultRule(nil), best.Faults[:i]...), best.Faults[i+1:]...)
			if try(c) {
				changed = true
			} else {
				i++
			}
		}

		// Pass 2: shrink the thread count, halving toward the floor.
		for best.Threads > minThreads {
			c := best
			c.Threads = best.Threads / 2
			if c.Threads < minThreads {
				c.Threads = minThreads
			}
			if !try(c) {
				break
			}
			changed = true
		}

		// Pass 3: halve the per-thread op count.
		for best.Ops > 8 {
			c := best
			c.Ops = best.Ops / 2
			if c.Ops < 8 {
				c.Ops = 8
			}
			if !try(c) {
				break
			}
			changed = true
		}

		// Pass 4: normalize perturbed knobs one at a time. A knob that
		// reverts without losing the failure was noise.
		type knob struct {
			perturbed bool
			apply     func(*Scenario)
		}
		for _, k := range []knob{
			{best.HashBits != 0, func(c *Scenario) { c.HashBits = 0 }},
			{best.HTMInterference != 0, func(c *Scenario) { c.HTMInterference = 0 }},
			{best.WatchdogSCFails != 0, func(c *Scenario) { c.WatchdogSCFails = 0 }},
			{best.HashSpinBudget != 0, func(c *Scenario) { c.HashSpinBudget = 0 }},
			{best.QuantumMax != defaultQuantumMax, func(c *Scenario) { c.QuantumMax = defaultQuantumMax }},
			{best.StrictPaper, func(c *Scenario) { c.StrictPaper = false }},
		} {
			if !k.perturbed {
				continue
			}
			c := best
			c.Faults = append([]FaultRule(nil), best.Faults...)
			k.apply(&c)
			if try(c) {
				changed = true
			}
		}

		// Pass 5: tighten the step budget to just past the failure point,
		// so the repro terminates quickly even if the engine regresses
		// into running further than it used to.
		if bestO.Steps > 0 {
			target := bestO.Steps + bestO.Steps/4 + 256
			if target < best.MaxSteps {
				c := best
				c.MaxSteps = target
				if try(c) {
					changed = true
				}
			}
		}
	}
	return best, bestO
}
