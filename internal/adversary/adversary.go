// Package adversary is a deterministic, seed-driven search engine for
// atomic-emulation bugs. It composes oracle-bearing guest workloads
// (internal/workload.Targets) with generated interference — fault
// injection schedules, engine knob perturbation, vCPU-count sweeps and
// adversarial thread interleavings — and judges every run with the
// workload's own correctness oracle plus the machine's failure taxonomy.
//
// The package splits into four layers:
//
//   - RunScenario (this file): execute one fully-described Scenario and
//     classify its outcome. In step mode the run is bit-deterministic:
//     the same Scenario always produces the same trace hash.
//   - stepper (sched.go): the deterministic scheduler that drives a
//     step-mode machine across blocking guest syscalls.
//   - Search (search.go): coverage-guided scenario generation.
//   - Minimize/Repro (minimize.go, repro.go): shrink a failing scenario
//     to a minimal deterministic reproduction and round-trip it as a
//     committed litmus regression.
package adversary

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"atomemu/internal/core"
	"atomemu/internal/engine"
	"atomemu/internal/faultinject"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/workload"
)

// Mode selects how a scenario's machine is driven.
type Mode string

const (
	// ModeStep drives every vCPU from one scheduler goroutine with a
	// seeded quantum schedule: fully deterministic, repro-able.
	ModeStep Mode = "step"
	// ModeFree runs the normal goroutine-per-vCPU engine: nondeterministic
	// but it exercises the free-running paths (block chaining, tiering,
	// host preemption) that step mode forces off. Findings from free runs
	// are re-established in step mode before they are minimized.
	ModeFree Mode = "free"
)

// FaultRule is the JSON-encodable mirror of faultinject.Rule, keyed by
// the op/action names faultinject.ParseOp and ParseAction accept.
type FaultRule struct {
	Op     string `json:"op"`
	Action string `json:"action"`
	TID    uint32 `json:"tid,omitempty"`
	Addr   uint32 `json:"addr,omitempty"`
	After  uint64 `json:"after,omitempty"`
	Count  uint64 `json:"count,omitempty"`
}

// Rule resolves and validates the underlying faultinject rule.
func (r FaultRule) Rule() (faultinject.Rule, error) {
	op, err := faultinject.ParseOp(r.Op)
	if err != nil {
		return faultinject.Rule{}, err
	}
	act, err := faultinject.ParseAction(r.Action)
	if err != nil {
		return faultinject.Rule{}, err
	}
	rule := faultinject.Rule{Op: op, Action: act, TID: r.TID, Addr: r.Addr, After: r.After, Count: r.Count}
	if err := rule.Validate(); err != nil {
		return faultinject.Rule{}, err
	}
	return rule, nil
}

func (r FaultRule) String() string {
	if rule, err := r.Rule(); err == nil {
		return rule.String()
	}
	return r.Op + ":" + r.Action + "(invalid)"
}

// Scenario fully describes one adversary run. Two runs of the same
// step-mode scenario produce identical traces.
type Scenario struct {
	Target  string `json:"target"`
	Scheme  string `json:"scheme"`
	Mode    Mode   `json:"mode"`
	Threads int    `json:"threads"`
	Ops     int    `json:"ops"`
	// Seed drives the step-mode interleaving schedule.
	Seed uint64 `json:"seed"`
	// QuantumMax bounds the steps granted per scheduling decision
	// (0 = default 8). Smaller quanta mean finer interleavings.
	QuantumMax int `json:"quantum_max,omitempty"`
	// MaxSteps bounds total guest instructions (step mode: machine-wide;
	// free mode: per vCPU). Exhausting it classifies the run as a wedge.
	MaxSteps uint64 `json:"max_steps,omitempty"`

	// Engine knob perturbation.
	StrictPaper     bool  `json:"strict_paper,omitempty"`
	HashBits        uint  `json:"hash_bits,omitempty"`
	HTMInterference int   `json:"htm_interference,omitempty"`
	WatchdogSCFails int64 `json:"watchdog_sc_fails,omitempty"`
	HashSpinBudget  int   `json:"hash_spin_budget,omitempty"`
	// ChainBudget and Tiered only matter in ModeFree (step mode forces
	// the IR-bypass paths off).
	ChainBudget int  `json:"chain_budget,omitempty"`
	Tiered      bool `json:"tiered,omitempty"`

	// Faults is the injected fault schedule.
	Faults []FaultRule `json:"faults,omitempty"`
}

// Scenario defaults. maxWorkloadThreads mirrors workload.MaxThreads: the
// targets carry per-thread result slots for at most that many vCPUs.
const (
	defaultQuantumMax = 8
	defaultMaxSteps   = 400_000
	maxWorkloadThreads = workload.MaxThreads
)

// withDefaults normalizes a scenario in place-free style: zero fields get
// their documented defaults, bounded fields are clamped. Normalization is
// part of the scenario's identity — repros store the normalized form.
func (s Scenario) withDefaults() Scenario {
	if s.Mode == "" {
		s.Mode = ModeStep
	}
	if s.QuantumMax <= 0 {
		s.QuantumMax = defaultQuantumMax
	}
	if s.MaxSteps == 0 {
		s.MaxSteps = defaultMaxSteps
	}
	if s.Threads < 1 {
		s.Threads = 1
	}
	if s.Threads > maxWorkloadThreads {
		s.Threads = maxWorkloadThreads
	}
	if s.Ops <= 0 {
		s.Ops = 64
	}
	return s
}

// ID is a compact human-readable scenario label for CSV rows and logs.
func (s Scenario) ID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s t%d ops%d seed%d q%d", s.Target, s.Scheme, s.Mode, s.Threads, s.Ops, s.Seed, s.QuantumMax)
	if s.StrictPaper {
		b.WriteString(" strict")
	}
	for _, f := range s.Faults {
		b.WriteString(" ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Class is the adversary's outcome taxonomy.
type Class uint8

const (
	// ClassOK: every thread exited cleanly and the oracle held.
	ClassOK Class = iota
	// ClassOracle: threads finished but the workload invariant is violated
	// (or a thread bailed out of a corrupted structure).
	ClassOracle
	// ClassLivelock: an HTM scheme declared abort livelock (EmulationError).
	ClassLivelock
	// ClassWatchdog: the SC-progress or hash-lock watchdog tripped.
	ClassWatchdog
	// ClassDeadlock: the guest deadlock detector fired.
	ClassDeadlock
	// ClassGuestFault: a guest memory fault stopped the machine.
	ClassGuestFault
	// ClassWedge: the step budget ran out before completion — inconclusive
	// (real livelock and scheduler starvation are indistinguishable here).
	ClassWedge
	// ClassError: any other machine error (scheme error, vCPU panic).
	ClassError
)

var classNames = [...]string{
	ClassOK:         "ok",
	ClassOracle:     "oracle",
	ClassLivelock:   "livelock",
	ClassWatchdog:   "watchdog",
	ClassDeadlock:   "deadlock",
	ClassGuestFault: "guest-fault",
	ClassWedge:      "wedge",
	ClassError:      "error",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// ParseClass resolves a class name (repro files).
func ParseClass(s string) (Class, error) {
	for c, n := range classNames {
		if n == s {
			return Class(c), nil
		}
	}
	return 0, fmt.Errorf("adversary: unknown outcome class %q", s)
}

// Outcome is the judged result of one scenario run.
type Outcome struct {
	Class Class
	// Err is the machine's fatal error text, if any.
	Err string
	// OracleErr is the workload oracle's verdict on a finished run.
	OracleErr string
	// Atomicity is what the scheme guarantees (drives expectations).
	Atomicity core.Atomicity
	// Steps is the number of guest instructions actually executed.
	Steps uint64
	// TraceHash fingerprints the merged event trace plus final exit codes;
	// step-mode runs of the same scenario always produce the same hash.
	TraceHash uint64
	// Census counts events and counters for coverage feedback.
	Census map[string]uint64
	// RuleStats reports per-fault-rule match/fire counts (coverage: a rule
	// that never fired explored nothing).
	RuleStats []faultinject.RuleStat
}

// OracleViolated reports whether the workload invariant itself broke (as
// opposed to a machine-level failure).
func (o *Outcome) OracleViolated() bool { return o.OracleErr != "" }

// RunScenario executes one scenario. The returned error covers scenario
// construction problems only (unknown target or scheme, invalid fault
// rule); machine failures and oracle verdicts land in the Outcome.
func RunScenario(s Scenario) (*Outcome, error) {
	s = s.withDefaults()
	tg, ok := workload.TargetByName(s.Target)
	if !ok {
		return nil, fmt.Errorf("adversary: unknown target %q", s.Target)
	}
	if s.Threads < tg.MinThreads {
		s.Threads = tg.MinThreads
	}
	if tg.MaxOps > 0 && s.Ops > tg.MaxOps {
		s.Ops = tg.MaxOps
	}
	inst, err := tg.Build(0x10000)
	if err != nil {
		return nil, fmt.Errorf("adversary: building %s: %w", s.Target, err)
	}
	rules := make([]faultinject.Rule, 0, len(s.Faults))
	for i, f := range s.Faults {
		r, err := f.Rule()
		if err != nil {
			return nil, fmt.Errorf("adversary: fault[%d]: %w", i, err)
		}
		rules = append(rules, r)
	}

	cfg := engine.DefaultConfig(s.Scheme)
	cfg.TraceEvents = true
	cfg.TraceRingBits = 13
	cfg.StrictPaper = s.StrictPaper
	if s.HashBits > 0 {
		cfg.HashBits = s.HashBits
	}
	if s.HTMInterference > 0 {
		cfg.HTMInterference = s.HTMInterference
	}
	if s.WatchdogSCFails != 0 {
		cfg.WatchdogSCFails = s.WatchdogSCFails
	}
	if s.HashSpinBudget > 0 {
		cfg.HashSpinBudget = s.HashSpinBudget
	}
	if len(rules) > 0 {
		cfg.FaultInjector = faultinject.New(rules...)
	}
	var st *stepper
	switch s.Mode {
	case ModeStep:
		cfg.StepMode = true
		st = newStepper()
		cfg.SchedHook = st
	case ModeFree:
		cfg.ChainBudget = s.ChainBudget
		cfg.Tiered = s.Tiered
		cfg.MaxGuestInstrs = s.MaxSteps
	default:
		return nil, fmt.Errorf("adversary: unknown mode %q", s.Mode)
	}

	m, err := engine.NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	if err := m.LoadImage(inst.Image); err != nil {
		return nil, fmt.Errorf("adversary: loading %s: %w", s.Target, err)
	}
	if inst.Setup != nil {
		if err := inst.Setup(m.Mem(), s.Threads, s.Ops); err != nil {
			return nil, fmt.Errorf("adversary: setting up %s: %w", s.Target, err)
		}
	}
	if inst.Barrier != nil {
		if addr, n := inst.Barrier(s.Threads); n > 0 {
			m.InitBarrier(addr, n)
		}
	}
	cpus := make([]*engine.CPU, s.Threads)
	for i := 0; i < s.Threads; i++ {
		c, err := m.SpawnThread(inst.Entry, inst.Args(i, s.Threads, s.Ops))
		if err != nil {
			return nil, fmt.Errorf("adversary: spawning thread %d: %w", i, err)
		}
		cpus[i] = c
	}

	o := &Outcome{Atomicity: m.Scheme().Atomicity()}
	wedged := false
	if s.Mode == ModeStep {
		o.Steps, wedged = st.run(m, cpus, s.Seed, s.QuantumMax, s.MaxSteps)
	} else {
		_ = m.Run()
		o.Steps = m.AggregateStats().GuestInstrs
	}

	runErr := m.Err()
	switch {
	case wedged || errors.Is(runErr, ErrWedged):
		o.Class = ClassWedge
		o.Err = ErrWedged.Error()
	case runErr != nil:
		o.Class = classifyError(runErr)
		o.Err = runErr.Error()
	default:
		o.Class = ClassOK
		if err := inst.Verify(m.Mem(), s.Threads, s.Ops); err != nil {
			o.Class = ClassOracle
			o.OracleErr = err.Error()
		} else {
			for _, c := range m.CPUs() {
				if code := c.ExitCode(); code != 0 {
					o.Class = ClassOracle
					o.OracleErr = fmt.Sprintf("thread %d bailed with exit code %d (structure wedged or drained)", c.TID(), code)
					break
				}
			}
		}
	}
	o.TraceHash = traceHash(m)
	o.Census = censusOf(m)
	o.RuleStats = cfg.FaultInjector.RuleStats()
	return o, nil
}

// classifyError maps a machine error to the outcome taxonomy.
func classifyError(err error) Class {
	var ee *core.EmulationError
	if errors.As(err, &ee) {
		if strings.Contains(ee.Reason, "livelock") {
			return ClassLivelock
		}
		return ClassError
	}
	var we *core.WatchdogError
	if errors.As(err, &we) {
		return ClassWatchdog
	}
	var dl *core.DeadlockError
	if errors.As(err, &dl) {
		return ClassDeadlock
	}
	var mf *mmu.Fault
	if errors.As(err, &mf) {
		return ClassGuestFault
	}
	var de *engine.DeadlineError
	if errors.As(err, &de) {
		return ClassWedge
	}
	if strings.Contains(err.Error(), "guest instructions") {
		// MaxGuestInstrs exhaustion (ModeFree's step budget).
		return ClassWedge
	}
	return ClassError
}

// Expectation judges an outcome against the paper's known failure
// envelope: is this failure something the modeled system is documented to
// do (the Fig. 11 strict-paper HTM livelock, ABA loss under an
// incorrect-atomicity scheme, starvation under an injected stuck lock) —
// or a genuine finding? The returned reason string explains the verdict.
func Expectation(s Scenario, o *Outcome) (expected bool, why string) {
	s = s.withDefaults()
	switch o.Class {
	case ClassOK:
		return true, "clean run"
	case ClassWedge:
		return true, "inconclusive: step budget exhausted (possible scheduler starvation)"
	case ClassLivelock:
		if s.StrictPaper && strings.Contains(s.Scheme, "htm") {
			return true, "known: fig. 11 strict-paper HTM abort livelock"
		}
		return false, "abort livelock outside the strict-paper HTM envelope"
	case ClassOracle:
		if o.Atomicity == core.AtomicityIncorrect {
			return true, "known: incorrect-atomicity scheme loses ABA updates"
		}
		return false, "oracle violated under a scheme whose atomicity should suffice"
	case ClassWatchdog:
		if len(s.Faults) > 0 {
			return true, "injected fault schedule starves progress (stuck lock / abort storm)"
		}
		if s.WatchdogSCFails > 0 && s.WatchdogSCFails < 1<<17 {
			return true, "watchdog tuned far below its default threshold"
		}
		return false, "watchdog tripped with no injected faults"
	case ClassGuestFault:
		for _, f := range s.Faults {
			if f.Action == "fault" {
				return true, "injected memory fault"
			}
		}
		if o.Atomicity == core.AtomicityIncorrect {
			return true, "structure corrupted by an incorrect-atomicity scheme chased a wild pointer"
		}
		return false, "guest memory fault with no injected fault rules"
	case ClassDeadlock:
		if len(s.Faults) > 0 {
			return true, "injected fault schedule may strand a waiter protocol"
		}
		return false, "guest deadlock under a clean schedule"
	default:
		return false, "engine error: " + o.Err
	}
}

// traceHash fingerprints everything guest-observable about a finished
// run: the merged event trace (stably ordered by the engine) and each
// vCPU's halt state. Step-mode determinism makes this byte-stable.
func traceHash(m *engine.Machine) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, ev := range m.TraceEvents() {
		w64(ev.VT)
		w64(uint64(ev.TID)<<32 | uint64(ev.Addr))
		w64(uint64(ev.Kind)<<32 | uint64(uint32(ev.Arg)))
	}
	for _, c := range m.CPUs() {
		w64(uint64(c.TID())<<32 | uint64(c.ExitCode()))
		st := c.VStats()
		w64(st.GuestInstrs)
	}
	return h.Sum64()
}

// censusOf summarises a run as named counters: the aggregate vCPU stats
// plus an event census (per kind, and per SC-failure reason). The search
// uses it as coverage feedback.
func censusOf(m *engine.Machine) map[string]uint64 {
	agg := m.AggregateStats()
	c := map[string]uint64{
		"guest_instrs":     agg.GuestInstrs,
		"loads":            agg.Loads,
		"stores":           agg.Stores,
		"lls":              agg.LLs,
		"scs":              agg.SCs,
		"sc_fails":         agg.SCFails,
		"hash_conflicts":   agg.HashConflicts,
		"page_faults":      agg.PageFaults,
		"false_sharing":    agg.FalseSharing,
		"htm_commits":      agg.HTMCommits,
		"htm_aborts":       agg.HTMAborts,
		"htm_retries":      agg.HTMRetries,
		"scheme_fallbacks": agg.SchemeFallbacks,
		"watchdog_trips":   agg.WatchdogTrips,
		"excl_sections":    agg.ExclSections,
	}
	for _, ev := range m.TraceEvents() {
		c["ev_"+ev.Kind.String()]++
		if ev.Kind == obs.EvSCFail {
			c["sc_fail_"+obs.SCReasonString(ev.Arg)]++
		}
	}
	return c
}
