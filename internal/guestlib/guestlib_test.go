package guestlib

import (
	"testing"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/engine"
)

// runWorkers builds a machine for the scheme, loads the image, spawns n
// workers at entry with the given r0, runs to completion.
func runWorkers(t *testing.T, scheme string, im *asm.Image, entry uint32, n int, arg uint32) *engine.Machine {
	t.Helper()
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 200_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.SpawnThread(entry, arg); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// buildWith assembles a worker program around emitted library routines.
func buildWith(t *testing.T, emit func(b *asm.Builder)) *asm.Image {
	t.Helper()
	b := asm.NewBuilder(0x10000)
	emit(b)
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestAtomicAddConcurrent(t *testing.T) {
	const threads, iters = 4, 2000
	im := buildWith(t, func(b *asm.Builder) {
		b.Label("worker") // r0 = iters
		b.Mov(arch.R9, arch.R0)
		b.Label("loop")
		b.LoadAddr(arch.R0, "cell")
		b.MovI(arch.R1, 1)
		b.BL("atomic_add")
		b.SubsI(arch.R9, arch.R9, 1)
		b.Bne("loop")
		b.MovI(arch.R0, 0)
		b.Svc(1)
		EmitAtomicAdd(b, "atomic_add")
		b.AlignWords(2)
		b.Label("cell")
		b.Word(0)
	})
	for _, scheme := range []string{"pico-cas", "hst", "hst-weak", "pst"} {
		t.Run(scheme, func(t *testing.T) {
			m := runWorkers(t, scheme, im, im.MustSymbol("worker"), threads, iters)
			v, _ := m.Mem().ReadWordPriv(im.MustSymbol("cell"))
			if v != threads*iters {
				t.Fatalf("atomic_add lost updates: %d, want %d", v, threads*iters)
			}
		})
	}
}

func TestAtomicCASAndXchg(t *testing.T) {
	im := buildWith(t, func(b *asm.Builder) {
		b.Label("main")
		// xchg cell: old value (7) -> r0, cell = 9.
		b.LoadAddr(arch.R0, "cell")
		b.MovI(arch.R1, 9)
		b.BL("axchg")
		b.Svc(6) // write old (7)
		// CAS cell 9 -> 11: succeeds (writes 0).
		b.LoadAddr(arch.R0, "cell")
		b.MovI(arch.R1, 9)
		b.MovI(arch.R2, 11)
		b.BL("acas")
		b.Svc(6)
		// CAS cell 9 -> 13: fails (writes 1), cell stays 11.
		b.LoadAddr(arch.R0, "cell")
		b.MovI(arch.R1, 9)
		b.MovI(arch.R2, 13)
		b.BL("acas")
		b.Svc(6)
		b.LoadAddr(arch.R1, "cell")
		b.Ldr(arch.R0, arch.R1, 0)
		b.Svc(6) // write 11
		b.Svc(1)
		EmitAtomicCAS(b, "acas")
		EmitAtomicXchg(b, "axchg")
		b.AlignWords(2)
		b.Label("cell")
		b.Word(7)
	})
	m := runWorkers(t, "hst", im, im.MustSymbol("main"), 1, 0)
	want := []uint32{7, 0, 1, 11}
	got := m.Output()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func lockCounterImage(t *testing.T, emitLock func(b *asm.Builder, name string)) *asm.Image {
	return buildWith(t, func(b *asm.Builder) {
		b.Label("worker") // r0 = iters
		b.Mov(arch.R9, arch.R0)
		b.Label("loop")
		b.LoadAddr(arch.R0, "lock")
		b.BL("l_acquire")
		// Unprotected increment inside the critical section.
		b.LoadAddr(arch.R4, "cell")
		b.Ldr(arch.R1, arch.R4, 0)
		b.AddI(arch.R1, arch.R1, 1)
		b.Str(arch.R1, arch.R4, 0)
		b.LoadAddr(arch.R0, "lock")
		b.BL("l_release")
		b.SubsI(arch.R9, arch.R9, 1)
		b.Bne("loop")
		b.MovI(arch.R0, 0)
		b.Svc(1)
		emitLock(b, "l")
		b.AlignWords(2)
		b.Label("lock")
		b.Word(0)
		b.Label("cell")
		b.Word(0)
	})
}

func TestSpinLockMutualExclusion(t *testing.T) {
	const threads, iters = 4, 800
	im := lockCounterImage(t, EmitSpinLock)
	for _, scheme := range []string{"pico-cas", "hst", "hst-weak", "pico-st"} {
		t.Run(scheme, func(t *testing.T) {
			m := runWorkers(t, scheme, im, im.MustSymbol("worker"), threads, iters)
			v, _ := m.Mem().ReadWordPriv(im.MustSymbol("cell"))
			if v != threads*iters {
				t.Fatalf("spinlock failed mutual exclusion: %d, want %d", v, threads*iters)
			}
		})
	}
}

func TestFutexLockMutualExclusion(t *testing.T) {
	const threads, iters = 6, 500
	im := lockCounterImage(t, EmitFutexLock)
	m := runWorkers(t, "hst", im, im.MustSymbol("worker"), threads, iters)
	v, _ := m.Mem().ReadWordPriv(im.MustSymbol("cell"))
	if v != threads*iters {
		t.Fatalf("futex lock failed mutual exclusion: %d, want %d", v, threads*iters)
	}
}

func TestXorshiftMatchesReference(t *testing.T) {
	im := buildWith(t, func(b *asm.Builder) {
		b.Label("main")
		b.MovI(arch.R9, 5)
		b.Label("loop")
		b.LoadAddr(arch.R0, "state")
		b.BL("rng")
		b.Svc(6)
		b.SubsI(arch.R9, arch.R9, 1)
		b.Bne("loop")
		b.Svc(1)
		EmitXorshift(b, "rng")
		b.AlignWords(2)
		b.Label("state")
		b.Word(0x12345678)
	})
	m := runWorkers(t, "pico-cas", im, im.MustSymbol("main"), 1, 0)
	// Host-side xorshift32 reference.
	ref := uint32(0x12345678)
	step := func() uint32 {
		ref ^= ref << 13
		ref ^= ref >> 17
		ref ^= ref << 5
		return ref
	}
	for i, got := range m.Output() {
		if want := step(); got != want {
			t.Fatalf("xorshift output %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestStackBenchSingleThreadClean(t *testing.T) {
	sb, err := BuildStackBench(0x10000, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig("hst")
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(sb.Image); err != nil {
		t.Fatal(err)
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(sb.Worker, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sb.CheckStack(m.Mem())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupted() {
		t.Fatalf("single-threaded stack corrupted: %s", rep)
	}
	if rep.Walked != 16 {
		t.Fatalf("walked %d nodes, want 16", rep.Walked)
	}
}

// runStackBench runs the ABA micro-benchmark and audits the stack.
func runStackBench(t *testing.T, scheme string, threads int, opsPerThread uint32, nodes uint32) StackReport {
	t.Helper()
	sb, err := BuildStackBench(0x10000, nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 500_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(sb.Image); err != nil {
		t.Fatal(err)
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(sb.Worker, opsPerThread); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sb.CheckStack(m.Mem())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestABAStackCorrectSchemesClean is the paper's §IV-A correctness claim:
// every scheme except PICO-CAS keeps the lock-free stack intact.
func TestABAStackCorrectSchemesClean(t *testing.T) {
	for _, scheme := range []string{"pico-st", "hst", "hst-weak", "hst-htm", "pico-htm", "pst", "pst-remap", "pst-mpk"} {
		t.Run(scheme, func(t *testing.T) {
			rep := runStackBench(t, scheme, 8, 2500, 8)
			if rep.Corrupted() {
				t.Fatalf("%s corrupted the stack: %s", scheme, rep)
			}
		})
	}
}

// TestABAStackPicoCASCorrupts: QEMU-4.1's scheme must exhibit the ABA
// problem under contention. The race needs the scheduler to cooperate, so
// several attempts are made; the paper's QEMU crashes within 2 seconds.
func TestABAStackPicoCASCorrupts(t *testing.T) {
	for attempt := 0; attempt < 6; attempt++ {
		rep := runStackBench(t, "pico-cas", 8, 20_000, 4)
		if rep.Corrupted() {
			t.Logf("ABA corruption observed on attempt %d: %s", attempt+1, rep)
			return
		}
	}
	t.Fatal("pico-cas never corrupted the stack — the ABA reproduction is broken")
}

func TestTicketLockMutualExclusionAndFairness(t *testing.T) {
	const threads, iters = 5, 400
	im := buildWith(t, func(b *asm.Builder) {
		b.Label("worker") // r0 = iters
		b.Mov(arch.R9, arch.R0)
		b.Label("loop")
		b.LoadAddr(arch.R0, "tlock")
		b.BL("t_acquire")
		b.LoadAddr(arch.R4, "cell")
		b.Ldr(arch.R1, arch.R4, 0)
		b.AddI(arch.R1, arch.R1, 1)
		b.Str(arch.R1, arch.R4, 0)
		b.LoadAddr(arch.R0, "tlock")
		b.BL("t_release")
		b.SubsI(arch.R9, arch.R9, 1)
		b.Bne("loop")
		b.MovI(arch.R0, 0)
		b.Svc(1)
		EmitTicketLock(b, "t")
		b.AlignWords(2)
		b.Label("tlock")
		b.Word(0) // next_ticket
		b.Word(0) // now_serving
		b.Label("cell")
		b.Word(0)
	})
	for _, scheme := range []string{"hst", "pico-cas", "pst-mpk"} {
		t.Run(scheme, func(t *testing.T) {
			m := runWorkers(t, scheme, im, im.MustSymbol("worker"), threads, iters)
			v, _ := m.Mem().ReadWordPriv(im.MustSymbol("cell"))
			if v != threads*iters {
				t.Fatalf("ticket lock lost updates: %d, want %d", v, threads*iters)
			}
			// Ticket bookkeeping: next_ticket == now_serving == total sections.
			next, _ := m.Mem().ReadWordPriv(im.MustSymbol("tlock"))
			serving, _ := m.Mem().ReadWordPriv(im.MustSymbol("tlock") + 4)
			if next != threads*iters || serving != threads*iters {
				t.Fatalf("tickets: next=%d serving=%d, want %d", next, serving, threads*iters)
			}
		})
	}
}

func TestMemcpyAndMemsetWords(t *testing.T) {
	im := buildWith(t, func(b *asm.Builder) {
		b.Label("main")
		// memset(dst, 0xAB, 8), then copy 8 words src -> dst2, print probes.
		b.LoadAddr(arch.R0, "dst")
		b.MovImm32(arch.R1, 0xAB)
		b.MovI(arch.R2, 8)
		b.BL("wmemset")
		b.LoadAddr(arch.R0, "dst2")
		b.LoadAddr(arch.R1, "dst")
		b.MovI(arch.R2, 8)
		b.BL("wmemcpy")
		b.LoadAddr(arch.R4, "dst2")
		b.Ldr(arch.R0, arch.R4, 0)
		b.Svc(6)
		b.Ldr(arch.R0, arch.R4, 28)
		b.Svc(6)
		b.Svc(1)
		EmitMemcpyWords(b, "wmemcpy")
		EmitMemsetWords(b, "wmemset")
		b.AlignWords(2)
		b.Label("dst")
		b.Space(8)
		b.Label("dst2")
		b.Space(8)
	})
	m := runWorkers(t, "pico-cas", im, im.MustSymbol("main"), 1, 0)
	out := m.Output()
	if len(out) != 2 || out[0] != 0xAB || out[1] != 0xAB {
		t.Fatalf("output = %v, want [0xAB 0xAB]", out)
	}
}
