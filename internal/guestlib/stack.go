package guestlib

import (
	"fmt"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/mmu"
)

// Treiber lock-free stack, the paper's Figure 3. Nodes are two words:
// [next, value]. The push stores node->next between the LL and the SC; the
// pop dereferences old_top->next between them — exactly the patterns whose
// atomicity the emulation schemes must preserve. Under PICO-CAS the pop's
// SC degenerates to a value CAS and the ABA interleaving of the paper's
// Figure 2 corrupts the stack.

// NodeWords is the node size in words: next pointer + payload.
const NodeWords = 2

// EmitStack emits "name_push" (r0 = &top, r1 = node) and "name_pop"
// (r0 = &top; returns the node in r0, or 0 when the stack is empty).
func EmitStack(b *asm.Builder, name string) {
	pushRetry := b.Gensym(name)
	b.Label(name + "_push")
	b.Label(pushRetry)
	b.Ldrex(arch.R2, arch.R0)          // old_top = LL(&top)
	b.Str(arch.R2, arch.R1, 0)         // node->next = old_top (plain store inside the window)
	b.Strex(arch.R3, arch.R1, arch.R0) // SC(&top, node)
	b.CmpI(arch.R3, 0)
	b.Bne(pushRetry)
	b.Ret()

	popRetry := b.Gensym(name)
	popEmpty := b.Gensym(name)
	b.Label(name + "_pop")
	b.Label(popRetry)
	b.Ldrex(arch.R1, arch.R0) // old_top = LL(&top)
	b.CmpI(arch.R1, 0)
	b.Beq(popEmpty)
	b.Ldr(arch.R2, arch.R1, 0)         // new_top = old_top->next (load inside the window)
	b.Strex(arch.R3, arch.R2, arch.R0) // SC(&top, new_top)
	b.CmpI(arch.R3, 0)
	b.Bne(popRetry)
	b.Mov(arch.R0, arch.R1)
	b.Ret()
	b.Label(popEmpty)
	b.Clrex()
	b.MovI(arch.R0, 0)
	b.Ret()
}

// StackBench describes an assembled lock-free-stack benchmark image.
type StackBench struct {
	Image *asm.Image
	// Worker is the thread entry: r0 = operation count (pop+push pairs).
	Worker uint32
	// Top is the address of the stack top pointer.
	Top uint32
	// Nodes is the base of the node array.
	Nodes uint32
	// NumNodes is the node count.
	NumNodes uint32
}

// BuildStackBench assembles the paper's §IV-A micro-benchmark: each worker
// repeatedly pops a node and pushes it back. The host seeds the stack with
// InitStack and audits it with CheckStack after the run.
func BuildStackBench(org uint32, numNodes uint32) (*StackBench, error) {
	if numNodes == 0 {
		return nil, fmt.Errorf("guestlib: need at least one node")
	}
	b := asm.NewBuilder(org)

	loop := "worker_loop"
	again := "worker_pop_again"
	b.Label("worker") // r0 = iterations
	b.Mov(arch.R9, arch.R0)
	b.MovI(arch.R10, 0) // consecutive-empty counter
	b.Label(loop)
	b.Label(again)
	b.LoadAddr(arch.R0, "top")
	b.BL("stack_pop")
	b.CmpI(arch.R0, 0)
	b.Beq("worker_empty")
	b.MovI(arch.R10, 0)
	b.Mov(arch.R8, arch.R0)
	// Touch the payload so the window between pop and push is realistic.
	b.Ldr(arch.R1, arch.R8, 4)
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R8, 4)
	b.LoadAddr(arch.R0, "top")
	b.Mov(arch.R1, arch.R8)
	b.BL("stack_push")
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne(loop)
	b.MovI(arch.R0, 0)
	b.Svc(1) // exit
	b.Label("worker_empty")
	// Transiently empty under heavy popping: retry without consuming an
	// iteration. A persistently empty stack means corruption lost every
	// node — bail out with exit code 2 so the run terminates (the paper's
	// QEMU run crashes here instead).
	b.AddI(arch.R10, arch.R10, 1)
	b.MovImm32(arch.R11, 100_000)
	b.Cmp(arch.R10, arch.R11)
	b.Bge("worker_lost")
	b.Yield()
	b.B(again)
	b.Label("worker_lost")
	b.MovI(arch.R0, 2)
	b.Svc(1)

	EmitStack(b, "stack")

	b.AlignWords(mmu.PageWords) // keep data off the code page (PST fairness)
	b.Label("top")
	b.Word(0)
	b.AlignWords(2)
	b.Label("nodes")
	b.Space(int(numNodes) * NodeWords)

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &StackBench{
		Image:    im,
		Worker:   im.MustSymbol("worker"),
		Top:      im.MustSymbol("top"),
		Nodes:    im.MustSymbol("nodes"),
		NumNodes: numNodes,
	}, nil
}

// memory is the slice of mmu.Memory the stack helpers need; *mmu.Memory
// satisfies it.
type memory interface {
	ReadWordPriv(addr uint32) (uint32, *mmu.Fault)
	WriteWordPriv(addr, val uint32) *mmu.Fault
}

// InitStack links every node onto the stack: top -> node0 -> node1 -> ...
func (sb *StackBench) InitStack(mem memory) error {
	for i := uint32(0); i < sb.NumNodes; i++ {
		node := sb.Nodes + i*NodeWords*4
		next := uint32(0)
		if i+1 < sb.NumNodes {
			next = node + NodeWords*4
		}
		if f := mem.WriteWordPriv(node, next); f != nil {
			return f
		}
		if f := mem.WriteWordPriv(node+4, 0); f != nil {
			return f
		}
	}
	if f := mem.WriteWordPriv(sb.Top, sb.Nodes); f != nil {
		return f
	}
	return nil
}

// StackReport is the result of auditing the stack after a run.
type StackReport struct {
	// Walked is how many nodes were reachable from top before a stop
	// condition.
	Walked uint32
	// SelfLoops counts nodes whose next pointer is themselves — the
	// paper's ABA signature.
	SelfLoops uint32
	// Cycles is true if the walk revisited a node (broader corruption).
	Cycles bool
	// Missing is how many of the original nodes are unreachable.
	Missing uint32
	// BadPointer is true if a next pointer left the node array.
	BadPointer bool
}

// Corrupted reports whether any ABA damage was found.
func (r StackReport) Corrupted() bool {
	return r.SelfLoops > 0 || r.Cycles || r.Missing > 0 || r.BadPointer
}

func (r StackReport) String() string {
	return fmt.Sprintf("walked=%d selfLoops=%d cycles=%v missing=%d badPtr=%v",
		r.Walked, r.SelfLoops, r.Cycles, r.Missing, r.BadPointer)
}

// CheckStack walks the stack and reports ABA corruption. All workers must
// have stopped.
func (sb *StackBench) CheckStack(mem memory) (StackReport, error) {
	var rep StackReport
	inRange := func(p uint32) bool {
		return p >= sb.Nodes && p < sb.Nodes+sb.NumNodes*NodeWords*4 &&
			(p-sb.Nodes)%(NodeWords*4) == 0
	}
	seen := make(map[uint32]bool, sb.NumNodes)
	cur, f := mem.ReadWordPriv(sb.Top)
	if f != nil {
		return rep, f
	}
	for cur != 0 {
		if !inRange(cur) {
			rep.BadPointer = true
			break
		}
		if seen[cur] {
			rep.Cycles = true
			break
		}
		seen[cur] = true
		rep.Walked++
		next, f := mem.ReadWordPriv(cur)
		if f != nil {
			return rep, f
		}
		if next == cur {
			break // self-loops are counted over the whole array below
		}
		cur = next
	}
	if rep.Walked < sb.NumNodes {
		rep.Missing = sb.NumNodes - rep.Walked
	}
	// The paper's ABA metric: entries whose next pointer is themselves
	// ("an average of 4% of the entries"), counted across every node.
	for i := uint32(0); i < sb.NumNodes; i++ {
		node := sb.Nodes + i*NodeWords*4
		next, f := mem.ReadWordPriv(node)
		if f != nil {
			return rep, f
		}
		if next == node {
			rep.SelfLoops++
		}
	}
	return rep, nil
}
