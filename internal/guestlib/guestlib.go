// Package guestlib is atomemu's guest-side runtime library: GA32 routines
// emitted through the macro-assembler that workloads, examples and tests
// link into their images. It provides the LL/SC idioms the paper's
// evaluation exercises — atomic read-modify-writes, spin and futex locks —
// and the Treiber lock-free stack of the paper's Figure 3, together with
// host-side helpers to initialize and audit the stack for ABA corruption.
//
// Calling convention: arguments in r0..r3, result in r0, r1–r3 and r12 are
// caller-saved scratch, r4–r11 callee-saved, return via bx lr. Routines here
// are leaves (no stack use) unless documented.
package guestlib

import (
	"atomemu/internal/arch"
	"atomemu/internal/asm"
)

// EmitAtomicAdd emits "name": r0 = address, r1 = delta; returns the new
// value in r0. Classic LL/SC retry loop (the compiler-generated pattern the
// paper's §VI discusses).
func EmitAtomicAdd(b *asm.Builder, name string) {
	retry := b.Gensym(name)
	b.Label(name)
	b.Label(retry)
	b.Ldrex(arch.R2, arch.R0)
	b.Add(arch.R2, arch.R2, arch.R1)
	b.Strex(arch.R3, arch.R2, arch.R0)
	b.CmpI(arch.R3, 0)
	b.Bne(retry)
	b.Mov(arch.R0, arch.R2)
	b.Ret()
}

// EmitAtomicXchg emits "name": r0 = address, r1 = new value; returns the
// old value in r0.
func EmitAtomicXchg(b *asm.Builder, name string) {
	retry := b.Gensym(name)
	b.Label(name)
	b.Label(retry)
	b.Ldrex(arch.R2, arch.R0)
	b.Strex(arch.R3, arch.R1, arch.R0)
	b.CmpI(arch.R3, 0)
	b.Bne(retry)
	b.Mov(arch.R0, arch.R2)
	b.Ret()
}

// EmitAtomicCAS emits "name": r0 = address, r1 = expected, r2 = desired;
// returns 0 in r0 on success, 1 on mismatch. Built from LL/SC like libc's
// __atomic_compare_exchange on ARM.
func EmitAtomicCAS(b *asm.Builder, name string) {
	retry := b.Gensym(name)
	fail := b.Gensym(name)
	b.Label(name)
	b.Label(retry)
	b.Ldrex(arch.R3, arch.R0)
	b.Cmp(arch.R3, arch.R1)
	b.Bne(fail)
	b.Strex(arch.R3, arch.R2, arch.R0)
	b.CmpI(arch.R3, 0)
	b.Bne(retry)
	b.MovI(arch.R0, 0)
	b.Ret()
	b.Label(fail)
	b.Clrex()
	b.MovI(arch.R0, 1)
	b.Ret()
}

// EmitSpinLock emits "name_acquire" and "name_release": r0 = lock address.
// Pure LL/SC spinlock with a yield hint in the contended path.
func EmitSpinLock(b *asm.Builder, name string) {
	acq := name + "_acquire"
	rel := name + "_release"
	wait := b.Gensym(name)
	b.Label(acq)
	b.Ldrex(arch.R1, arch.R0)
	b.CmpI(arch.R1, 0)
	b.Bne(wait)
	b.MovI(arch.R1, 1)
	b.Strex(arch.R2, arch.R1, arch.R0)
	b.CmpI(arch.R2, 0)
	b.Bne(acq)
	b.Ret()
	b.Label(wait)
	b.Clrex()
	b.Yield()
	b.B(acq)

	b.Label(rel)
	b.MovI(arch.R1, 0)
	b.Str(arch.R1, arch.R0, 0)
	b.Ret()
}

// EmitFutexLock emits "name_acquire"/"name_release": r0 = lock address.
// LL/SC fast path, futex sleep under contention, futex wake on release —
// the pthread-mutex shape the paper's PARSEC workloads spend their atomic
// instructions in. Clobbers r1–r4.
func EmitFutexLock(b *asm.Builder, name string) {
	acq := name + "_acquire"
	rel := name + "_release"
	retry := b.Gensym(name)
	contended := b.Gensym(name)
	b.Label(acq)
	b.Mov(arch.R4, arch.R0)
	b.Label(retry)
	b.Ldrex(arch.R1, arch.R4)
	b.CmpI(arch.R1, 0)
	b.Bne(contended)
	b.MovI(arch.R1, 1)
	b.Strex(arch.R2, arch.R1, arch.R4)
	b.CmpI(arch.R2, 0)
	b.Bne(retry)
	b.Ret()
	b.Label(contended)
	b.Clrex()
	b.Mov(arch.R0, arch.R4)
	b.MovI(arch.R1, 1)
	b.Svc(7) // futex_wait(lock, 1)
	b.Mov(arch.R0, arch.R4)
	b.B(retry)

	b.Label(rel)
	b.MovI(arch.R1, 0)
	b.Str(arch.R1, arch.R0, 0)
	b.MovI(arch.R1, 1)
	b.Svc(8) // futex_wake(lock, 1)
	b.Ret()
}

// EmitXorshift emits "name": r0 = address of a 1-word state; returns the
// next pseudo-random value in r0. xorshift32; the state must be nonzero.
func EmitXorshift(b *asm.Builder, name string) {
	b.Label(name)
	b.Ldr(arch.R1, arch.R0, 0)
	b.LslI(arch.R2, arch.R1, 13)
	b.Eor(arch.R1, arch.R1, arch.R2)
	b.LsrI(arch.R2, arch.R1, 17)
	b.Eor(arch.R1, arch.R1, arch.R2)
	b.LslI(arch.R2, arch.R1, 5)
	b.Eor(arch.R1, arch.R1, arch.R2)
	b.Str(arch.R1, arch.R0, 0)
	b.Mov(arch.R0, arch.R1)
	b.Ret()
}

// EmitTicketLock emits "name_acquire"/"name_release": r0 = lock address of
// a two-word ticket lock [next_ticket, now_serving]. FIFO-fair, unlike the
// test-and-set spinlock; the acquire's fetch-and-add is the compiler RMW
// shape the rule-based fuser recognizes. Clobbers r1–r4.
func EmitTicketLock(b *asm.Builder, name string) {
	acq := name + "_acquire"
	rel := name + "_release"
	take := b.Gensym(name)
	spin := b.Gensym(name)
	got := b.Gensym(name)
	b.Label(acq)
	b.Mov(arch.R4, arch.R0)
	// my_ticket = atomic_add(&next_ticket, 1) - 1
	b.Label(take)
	b.Ldrex(arch.R1, arch.R4)
	b.AddI(arch.R1, arch.R1, 1)
	b.Strex(arch.R2, arch.R1, arch.R4)
	b.CmpI(arch.R2, 0)
	b.Bne(take)
	b.SubI(arch.R3, arch.R1, 1) // my ticket
	// while (now_serving != my_ticket) yield
	b.Label(spin)
	b.Ldr(arch.R1, arch.R4, 4)
	b.Cmp(arch.R1, arch.R3)
	b.Beq(got)
	b.Yield()
	b.B(spin)
	b.Label(got)
	b.Ret()

	b.Label(rel)
	b.Ldr(arch.R1, arch.R0, 4)
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R0, 4)
	b.Ret()
}

// EmitMemcpyWords emits "name": r0 = dst, r1 = src, r2 = word count.
// Returns r0 = dst. Clobbers r3. Word-granular, forward copy.
func EmitMemcpyWords(b *asm.Builder, name string) {
	loop := b.Gensym(name)
	done := b.Gensym(name)
	b.Label(name)
	b.Push(arch.R0)
	b.Label(loop)
	b.CmpI(arch.R2, 0)
	b.Beq(done)
	b.Ldr(arch.R3, arch.R1, 0)
	b.Str(arch.R3, arch.R0, 0)
	b.AddI(arch.R0, arch.R0, 4)
	b.AddI(arch.R1, arch.R1, 4)
	b.SubI(arch.R2, arch.R2, 1)
	b.B(loop)
	b.Label(done)
	b.Pop(arch.R0)
	b.Ret()
}

// EmitMemsetWords emits "name": r0 = dst, r1 = value, r2 = word count.
// Returns r0 = dst. Clobbers nothing else.
func EmitMemsetWords(b *asm.Builder, name string) {
	loop := b.Gensym(name)
	done := b.Gensym(name)
	b.Label(name)
	b.Push(arch.R0)
	b.Label(loop)
	b.CmpI(arch.R2, 0)
	b.Beq(done)
	b.Str(arch.R1, arch.R0, 0)
	b.AddI(arch.R0, arch.R0, 4)
	b.SubI(arch.R2, arch.R2, 1)
	b.B(loop)
	b.Label(done)
	b.Pop(arch.R0)
	b.Ret()
}
