package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// Latency-histogram bucket bounds. Wall buckets span sub-millisecond unit
// tests to the 2-minute deadline cap; virtual buckets are decades of the
// cycle budgets jobs run under.
var (
	wallBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 30, 60, 120}
	virtBuckets = []float64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}
)

// observeJob folds one finished machine into the server-lifetime engine
// aggregate and the per-scheme latency histograms. Called from finish for
// every job that got a machine, whatever its terminal state.
func (s *Server) observeJob(scheme string, agg *stats.CPU, wall time.Duration, virt uint64) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.engineAgg.Add(agg)
	wh := s.wallHist[scheme]
	if wh == nil {
		wh = obs.NewHistogram(wallBuckets)
		s.wallHist[scheme] = wh
	}
	wh.Observe(wall.Seconds())
	vh := s.virtHist[scheme]
	if vh == nil {
		vh = obs.NewHistogram(virtBuckets)
		s.virtHist[scheme] = vh
	}
	vh.Observe(float64(virt))
}

// WritePrometheus renders the full exposition (text format 0.0.4):
// service counters, queue/drain gauges, per-scheme breaker states, the
// accumulated engine counters (every stats.CPU field, by reflection, so
// new counters appear automatically), per-component cycle totals, and
// per-scheme job latency histograms.
func (s *Server) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	m := s.Metrics()
	counter("atomemu_jobs_accepted_total", "Jobs admitted to the queue.", m.Accepted)
	counter("atomemu_jobs_shed_total", "Submissions rejected because the queue was full.", m.Shed)
	counter("atomemu_jobs_completed_total", "Jobs that finished successfully.", m.Completed)
	counter("atomemu_jobs_failed_total", "Jobs that ended in an error.", m.Failed)
	counter("atomemu_jobs_canceled_total", "Jobs canceled by deadline or drain.", m.Canceled)
	counter("atomemu_jobs_recovered_total", "Jobs that finished after a rollback restore.", m.Recovered)
	counter("atomemu_jobs_demoted_total", "Jobs routed to the portable fallback scheme.", m.Demoted)
	counter("atomemu_breaker_trips_total", "Circuit-breaker open transitions.", m.BreakerTrips)
	counter("atomemu_job_panics_total", "Host-side job panics contained by the worker.", m.Panics)

	// Durability exposition: always present so dashboards and smoke checks
	// can assert on the series; all zero on servers without a DataDir.
	counter("atomemu_journal_records_total", "Records appended to the job journal by this process.", m.JournalAppends)
	counter("atomemu_journal_fsyncs_total", "Journal fsyncs.", m.JournalFsyncs)
	counter("atomemu_journal_compactions_total", "Journal compactions (history collapsed to the live set).", m.JournalCompactions)
	counter("atomemu_journal_errors_total", "Journal append/sync failures (durability degraded, jobs proceed).", m.JournalErrors)
	counter("atomemu_journal_replayed_records_total", "Records recovered from the journal at the last startup.", m.JournalReplayed)
	counter("atomemu_journal_corrupt_records_total", "Corrupt journal records skipped at the last startup replay.", m.JournalCorrupt)
	counter("atomemu_ckpt_spill_total", "Checkpoint snapshots spilled to disk.", m.CkptSpills)
	counter("atomemu_ckpt_spill_bytes_total", "Bytes of encoded checkpoint snapshots spilled to disk.", m.CkptSpillBytes)
	counter("atomemu_ckpt_spill_errors_total", "Failed checkpoint spills.", m.CkptSpillErrors)
	counter("atomemu_ckpt_temps_swept_total", "Stale spill temp files removed at the last startup.", m.CkptTempsSwept)
	counter("atomemu_restart_jobs_resumed_total", "Jobs resumed from a durable checkpoint at the last startup.", m.RestartResumed)
	counter("atomemu_restart_jobs_requeued_total", "Jobs requeued from scratch at the last startup.", m.RestartRequeued)
	counter("atomemu_restart_jobs_terminal_total", "Terminal jobs re-registered for idempotent reads at the last startup.", m.RestartTerminal)
	gauge("atomemu_journal_segments", "Journal segment files on disk.")
	fmt.Fprintf(&b, "atomemu_journal_segments %d\n", m.JournalSegments)

	// Warm-start exposition: the process-wide translation store and the
	// checkpoint-template pool. Always present (zero when disabled) so
	// dashboards and the warmstart smoke check can assert on the series.
	counter("atomemu_tbstore_hits_total", "Cross-job translation store lookups that returned a block.", m.TBStoreHits)
	counter("atomemu_tbstore_misses_total", "Cross-job translation store lookups that found nothing.", m.TBStoreMisses)
	counter("atomemu_tbstore_publishes_total", "Blocks published to the cross-job translation store.", m.TBStorePublishes)
	counter("atomemu_tbstore_evictions_total", "Translation store segments cleared by the size cap.", m.TBStoreEvictions)
	counter("atomemu_tbstore_invalidations_total", "Machines that stopped sharing after mutating their code span.", m.TBStoreInvalidations)
	counter("atomemu_warm_forks_total", "Jobs started from a warm-pool checkpoint template.", m.WarmForks)
	counter("atomemu_warm_publishes_total", "Checkpoint templates published to the warm pool.", m.WarmPublishes)
	counter("atomemu_warm_fallbacks_total", "Warm forks that failed and fell back to a cold start.", m.WarmFallbacks)
	counter("atomemu_warm_evictions_total", "Warm-pool templates dropped by the size cap.", m.WarmEvictions)
	gauge("atomemu_tbstore_blocks", "Blocks cached in the cross-job translation store.")
	fmt.Fprintf(&b, "atomemu_tbstore_blocks %d\n", m.TBStoreBlocks)
	gauge("atomemu_tbstore_segments", "Distinct translation universes attached to the store.")
	fmt.Fprintf(&b, "atomemu_tbstore_segments %d\n", m.TBStoreSegments)
	gauge("atomemu_warm_templates", "Live checkpoint templates in the warm pool.")
	fmt.Fprintf(&b, "atomemu_warm_templates %d\n", m.WarmTemplates)

	gauge("atomemu_queue_length", "Jobs waiting in the admission queue.")
	fmt.Fprintf(&b, "atomemu_queue_length %d\n", len(s.jobQueue()))
	gauge("atomemu_queue_capacity", "Admission queue depth limit.")
	fmt.Fprintf(&b, "atomemu_queue_capacity %d\n", s.opts.QueueDepth)
	gauge("atomemu_draining", "1 while the server is draining, else 0.")
	fmt.Fprintf(&b, "atomemu_draining %d\n", boolGauge(s.Draining()))
	gauge("atomemu_recovering", "1 while journal replay is still running, else 0.")
	fmt.Fprintf(&b, "atomemu_recovering %d\n", boolGauge(s.recovering.Load()))

	gauge("atomemu_breaker_state", "Per-scheme breaker state: 0 closed, 1 open, 2 half-open.")
	for _, bs := range s.Breakers() {
		fmt.Fprintf(&b, "atomemu_breaker_state{scheme=%q} %d\n", bs.Scheme, breakerStateValue(bs.State))
	}
	gauge("atomemu_breaker_failures", "Consecutive scheme-implicating failures counted toward the threshold.")
	for _, bs := range s.Breakers() {
		fmt.Fprintf(&b, "atomemu_breaker_failures{scheme=%q} %d\n", bs.Scheme, bs.Failures)
	}

	s.aggMu.Lock()
	fields := s.engineAgg.Fields()
	cycles := s.engineAgg.Cycles
	schemes := make([]string, 0, len(s.wallHist))
	for sch := range s.wallHist {
		schemes = append(schemes, sch)
	}
	sort.Strings(schemes)
	type schemeHists struct {
		scheme     string
		wall, virt obs.HistSnapshot
	}
	hists := make([]schemeHists, 0, len(schemes))
	for _, sch := range schemes {
		hists = append(hists, schemeHists{sch, s.wallHist[sch].Snapshot(), s.virtHist[sch].Snapshot()})
	}
	s.aggMu.Unlock()

	// Engine counters, accumulated over every finished job's machine. The
	// field walk is reflection-driven (stats.CPU.Fields), so counters added
	// to the engine automatically reach the exposition.
	for _, f := range fields {
		counter("atomemu_engine_"+f.Name+"_total",
			"Engine counter "+f.Name+", summed over finished jobs.", f.Value)
	}
	fmt.Fprintf(&b, "# HELP atomemu_engine_cycles_total Virtual cycles by cost component, summed over finished jobs.\n# TYPE atomemu_engine_cycles_total counter\n")
	for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
		fmt.Fprintf(&b, "atomemu_engine_cycles_total{component=%q} %d\n", comp.String(), cycles[comp])
	}

	writeHist := func(name, scheme string, h obs.HistSnapshot) {
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, "%s_bucket{scheme=%q,le=%q} %d\n", name, scheme, formatBound(bound), h.Buckets[i])
		}
		fmt.Fprintf(&b, "%s_bucket{scheme=%q,le=\"+Inf\"} %d\n", name, scheme, h.Buckets[len(h.Buckets)-1])
		fmt.Fprintf(&b, "%s_sum{scheme=%q} %s\n", name, scheme, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count{scheme=%q} %d\n", name, scheme, h.Count)
	}
	fmt.Fprintf(&b, "# HELP atomemu_job_wall_seconds Wall-clock job duration by effective scheme.\n# TYPE atomemu_job_wall_seconds histogram\n")
	for _, h := range hists {
		writeHist("atomemu_job_wall_seconds", h.scheme, h.wall)
	}
	fmt.Fprintf(&b, "# HELP atomemu_job_virtual_cycles Virtual-time job duration by effective scheme.\n# TYPE atomemu_job_virtual_cycles histogram\n")
	for _, h := range hists {
		writeHist("atomemu_job_virtual_cycles", h.scheme, h.virt)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}

func breakerStateValue(state string) int {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 2
	default:
		return 0
	}
}

// formatBound renders a bucket upper bound the way Prometheus clients do.
func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WritePrometheus(w); err != nil {
		s.opts.Logger.Printf("server: writing /metrics: %v", err)
	}
}
