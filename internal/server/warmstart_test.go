package server

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomemu/internal/checkpoint"
)

// warmOptions is the warm-start-enabled server shape the daemon flags
// (-tbstore-blocks, -warm-pool, -warm-checkpoint-every) produce.
func warmOptions(workers int) Options {
	return Options{
		Workers:             workers,
		SharedTBCacheBlocks: 4096,
		WarmPoolSize:        4,
		WarmCheckpointEvery: 2000,
	}
}

// TestWarmPoolForkReuse is the end-to-end warm-start path: the first job for
// an image publishes its first checkpoint as a template; a repeat job for
// the same image forks from it (warm_forked), adopts shared translations,
// and still produces the identical output and guest instruction count.
func TestWarmPoolForkReuse(t *testing.T) {
	s := newTestServer(t, warmOptions(1))
	req := JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 4000}

	id1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := awaitTerminal(t, s, id1)
	if st1.State != StateDone || st1.ExitCode != 0 {
		t.Fatalf("cold job: state=%s exit=%d err=%q", st1.State, st1.ExitCode, st1.Error)
	}
	if st1.WarmForked {
		t.Fatal("first job for an image cannot be warm-forked")
	}
	m := s.Metrics()
	if m.WarmPublishes != 1 || m.WarmTemplates != 1 {
		t.Fatalf("cold job should leave one template: publishes=%d templates=%d",
			m.WarmPublishes, m.WarmTemplates)
	}
	if m.TBStorePublishes == 0 {
		t.Fatalf("cold job published no translations: %+v", m)
	}

	id2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := awaitTerminal(t, s, id2)
	if st2.State != StateDone || st2.ExitCode != 0 {
		t.Fatalf("repeat job: state=%s exit=%d err=%q", st2.State, st2.ExitCode, st2.Error)
	}
	if !st2.WarmForked {
		t.Fatal("repeat job for the same image should fork from the warm template")
	}
	if !equalU32(st2.Output, st1.Output) {
		t.Fatalf("warm fork output %v, cold %v — warm starts must not change results", st2.Output, st1.Output)
	}
	if st2.GuestInstrs != st1.GuestInstrs {
		t.Fatalf("warm fork guest instrs %d, cold %d", st2.GuestInstrs, st1.GuestInstrs)
	}
	m = s.Metrics()
	if m.WarmForks != 1 {
		t.Fatalf("warm forks = %d, want 1", m.WarmForks)
	}
	if m.TBStoreHits == 0 {
		t.Fatal("warm fork adopted nothing from the shared translation store")
	}
}

// TestWarmForkDeterminismAcrossSchemes: cold run, shared-store-hit run and
// warm fork must agree on output and guest instruction count per scheme.
func TestWarmForkDeterminismAcrossSchemes(t *testing.T) {
	for _, scheme := range []string{"pico-cas", "hst"} {
		t.Run(scheme, func(t *testing.T) {
			// Cold reference on a server with no warm-start state at all.
			ref := newTestServer(t, Options{Workers: 1})
			req := JobRequest{Scheme: scheme, GAC: counterGAC, Arg: 3000}
			rid, err := ref.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			want := awaitTerminal(t, ref, rid)

			s := newTestServer(t, warmOptions(1))
			var got []JobStatus
			for i := 0; i < 3; i++ {
				id, err := s.Submit(req)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, awaitTerminal(t, s, id))
			}
			if !got[2].WarmForked {
				t.Fatal("third submission should be a warm fork")
			}
			for i, st := range got {
				if st.State != StateDone {
					t.Fatalf("job %d: state=%s err=%q", i, st.State, st.Error)
				}
				if !equalU32(st.Output, want.Output) {
					t.Fatalf("job %d output %v, cold reference %v", i, st.Output, want.Output)
				}
				if st.GuestInstrs != want.GuestInstrs {
					t.Fatalf("job %d guest instrs %d, cold reference %d", i, st.GuestInstrs, want.GuestInstrs)
				}
			}
		})
	}
}

// TestFaultInjectedJobsStayCold: fault-injected jobs must neither consume
// nor feed the warm pool or the shared store.
func TestFaultInjectedJobsStayCold(t *testing.T) {
	opts := warmOptions(1)
	opts.AllowFaultInjection = true
	s := newTestServer(t, opts)
	req := JobRequest{
		Scheme: "pico-cas", GAC: counterGAC, Arg: 2000,
		Config: JobConfig{CheckpointEvery: 1000},
		Fault:  []FaultRule{{Op: "mem-store", Action: "fault", After: 100000000, Count: 1}},
	}
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state=%s err=%q", st.State, st.Error)
	}
	m := s.Metrics()
	if m.WarmPublishes != 0 || m.WarmTemplates != 0 {
		t.Fatalf("fault-injected job fed the warm pool: %+v", m)
	}
	if m.TBStorePublishes != 0 {
		t.Fatalf("fault-injected job fed the shared store: %+v", m)
	}
}

// TestStatzReportsWarmth: the /statz warmth hint the router's placement
// probe parses must always be present, and must move once state is warm.
func TestStatzReportsWarmth(t *testing.T) {
	s := newTestServer(t, warmOptions(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readWarmth := func() map[string]int {
		resp, err := ts.Client().Get(ts.URL + "/statz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Warmth map[string]int `json:"warmth"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Warmth == nil {
			t.Fatal("/statz warmth hint missing")
		}
		return body.Warmth
	}
	w := readWarmth()
	if w["tbstore_blocks"] != 0 || w["warm_templates"] != 0 {
		t.Fatalf("fresh server should be cold: %v", w)
	}

	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 4000})
	if err != nil {
		t.Fatal(err)
	}
	awaitTerminal(t, s, id)
	w = readWarmth()
	if w["tbstore_blocks"] == 0 || w["warm_templates"] != 1 {
		t.Fatalf("warmth hint did not move after a completed job: %v", w)
	}
}

// TestRestartSweepsStaleCheckpointTemps: a crash between CreateTemp and the
// rename leaves <datadir>/ckpt/<job>.tmp-* orphans; startup must remove
// them — and only them, never a completed spill.
func TestRestartSweepsStaleCheckpointTemps(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := []string{"job-1.tmp-123456", "job-7.tmp-9"}
	for _, name := range stale {
		if err := os.WriteFile(filepath.Join(ckptDir, name), []byte("torn spill"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(ckptDir, "job-2"), []byte("completed spill"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{Workers: 1, DataDir: dir})
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(ckptDir, name)); !os.IsNotExist(err) {
			t.Errorf("stale temp %s survived the startup sweep (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(ckptDir, "job-2")); err != nil {
		t.Errorf("completed spill removed by the sweep: %v", err)
	}
	if got := s.Metrics().CkptTempsSwept; got != uint64(len(stale)) {
		t.Errorf("ckpt temps swept = %d, want %d", got, len(stale))
	}

	// The sweep is startup-only hygiene: a live spiller's temps (written and
	// renamed while running) must be unaffected — exercise a real durable
	// checkpointing job on the same server to be sure nothing regressed.
	id, err := s.Submit(JobRequest{
		Scheme: "pico-cas", GAC: counterGAC, Arg: 4000,
		Config: JobConfig{CheckpointEvery: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state=%s err=%q", st.State, st.Error)
	}
	if st.Checkpoints == 0 {
		t.Fatal("job took no checkpoints; the spiller never ran")
	}
	// Terminal jobs have their spill removed; what must never accumulate
	// is half-written temps.
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind after a clean spill", e.Name())
		}
	}
}

// TestWarmPoolEvictsLRU: the pool holds at most WarmPoolSize templates and
// drops the least-recently-used one past the cap.
func TestWarmPoolEvictsLRU(t *testing.T) {
	p := newWarmPool(2)
	p.publish("a", &warmTemplate{snap: &checkpoint.Snapshot{}})
	p.publish("b", &warmTemplate{snap: &checkpoint.Snapshot{}})
	if p.lookup("a") == nil { // refresh a; b is now LRU
		t.Fatal("template a missing")
	}
	p.publish("c", &warmTemplate{snap: &checkpoint.Snapshot{}})
	if p.size() != 2 {
		t.Fatalf("pool size = %d, want 2", p.size())
	}
	if p.lookup("b") != nil {
		t.Fatal("LRU template b should have been evicted")
	}
	if p.lookup("a") == nil || p.lookup("c") == nil {
		t.Fatal("wrong template evicted")
	}
	if p.evictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", p.evictions.Load())
	}
	// First-wins: a re-publish must not replace an existing template.
	tmpl := p.lookup("a")
	p.publish("a", &warmTemplate{snap: &checkpoint.Snapshot{}})
	if p.lookup("a") != tmpl {
		t.Fatal("re-publish replaced an existing template")
	}
}
