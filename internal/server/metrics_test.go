package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricLine matches one sample of the text exposition format: a metric
// name, optional {labels}, and a number (int, float, or ±Inf/NaN).
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? ([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$`)

func scrape(t *testing.T, s *Server) string {
	t.Helper()
	var b bytes.Buffer
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// parseExposition validates every non-comment line against the text
// format and returns sample values keyed by the full series name.
func parseExposition(text string) (map[string]float64, error) {
	samples := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			return nil, fmt.Errorf("line %d is not valid exposition syntax: %q", i+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d value: %v", i+1, err)
		}
		samples[line[:sp]] = v
	}
	return samples, nil
}

func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples, err := parseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	for _, scheme := range []string{"pico-cas", "hst"} {
		id, err := s.Submit(JobRequest{Scheme: scheme, GAC: counterGAC, Threads: 2, Arg: 200})
		if err != nil {
			t.Fatal(err)
		}
		if st := awaitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("%s job: state=%s err=%q", scheme, st.State, st.Error)
		}
	}
	samples := checkExposition(t, scrape(t, s))

	if got := samples["atomemu_jobs_completed_total"]; got != 2 {
		t.Fatalf("jobs_completed_total = %v, want 2", got)
	}
	for _, name := range []string{
		"atomemu_jobs_accepted_total", "atomemu_jobs_shed_total",
		"atomemu_queue_length", "atomemu_queue_capacity", "atomemu_draining",
		"atomemu_engine_scs_total", "atomemu_engine_sc_fails_total",
		"atomemu_engine_lls_total", "atomemu_engine_guest_instrs_total",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("missing series %s", name)
		}
	}
	if samples["atomemu_engine_scs_total"] == 0 {
		t.Error("engine SC counter did not accumulate across jobs")
	}
	// Per-scheme latency histograms: each scheme ran exactly one job, so
	// its +Inf bucket and _count must both be 1 and agree.
	for _, scheme := range []string{"pico-cas", "hst"} {
		for _, hist := range []string{"atomemu_job_wall_seconds", "atomemu_job_virtual_cycles"} {
			inf := fmt.Sprintf(`%s_bucket{scheme="%s",le="+Inf"}`, hist, scheme)
			cnt := fmt.Sprintf(`%s_count{scheme="%s"}`, hist, scheme)
			if samples[inf] != 1 || samples[cnt] != 1 {
				t.Errorf("%s{%s}: +Inf=%v count=%v, want 1/1", hist, scheme, samples[inf], samples[cnt])
			}
		}
	}
	// Breaker gauges exist for every scheme and are all closed (0).
	if v, ok := samples[`atomemu_breaker_state{scheme="pico-cas"}`]; !ok || v != 0 {
		t.Errorf("breaker_state{pico-cas} = %v, want 0", v)
	}
}

func TestMetricsBreakerOpenGauge(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	wedged := JobRequest{Scheme: "pico-cas", GAC: wedgedGAC,
		Config: JobConfig{WatchdogSCFails: 200}}
	for i := 0; i < 2; i++ {
		id, err := s.Submit(wedged)
		if err != nil {
			t.Fatal(err)
		}
		awaitTerminal(t, s, id)
	}
	samples := checkExposition(t, scrape(t, s))
	if got := samples[`atomemu_breaker_state{scheme="pico-cas"}`]; got != 1 {
		t.Fatalf("breaker_state{pico-cas} = %v, want 1 (open)", got)
	}
	if got := samples["atomemu_breaker_trips_total"]; got != 1 {
		t.Fatalf("breaker_trips_total = %v, want 1", got)
	}
	if got := samples["atomemu_jobs_failed_total"]; got != 2 {
		t.Fatalf("jobs_failed_total = %v, want 2", got)
	}
}

// TestReadEndpointsRejectNonGET covers the hygiene fix: the read-only
// endpoints used to run their handlers for any method.
func TestReadEndpointsRejectNonGET(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz", "/statz", "/metrics", "/jobs/nope"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s Allow header = %q, want GET", method, path, allow)
			}
		}
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("GET %s rejected with 405", path)
		}
	}
}

func TestMetricsContentType(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", got)
	}
	body, _ := io.ReadAll(resp.Body)
	checkExposition(t, string(body))
}

// TestWriteJSONLogsEncodeError: an unencodable value used to be silently
// dropped, leaving the client a 200 with an empty body and no trace.
func TestWriteJSONLogsEncodeError(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Options{Workers: 1, Logger: log.New(&buf, "", 0)})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if !strings.Contains(buf.String(), "encoding 200 response") {
		t.Fatalf("encode failure not logged; log output: %q", buf.String())
	}
}

// TestMetricsChurnRace hammers /statz and /metrics while jobs submit,
// run, fail (tripping a breaker), and the server finally drains — meant
// to run under -race. Histogram counts must be monotonic across scrapes.
func TestMetricsChurnRace(t *testing.T) {
	s, err := New(Options{Workers: 4, QueueDepth: 64,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Submitters: healthy jobs on two schemes plus wedged pico-st jobs
	// that trip its breaker mid-churn.
	ids := make(chan string, 256)
	for _, req := range []JobRequest{
		{Scheme: "pico-cas", GAC: counterGAC, Threads: 2, Arg: 100},
		{Scheme: "hst", GAC: counterGAC, Threads: 2, Arg: 100},
		{Scheme: "pico-st", GAC: wedgedGAC, Config: JobConfig{WatchdogSCFails: 200}},
	} {
		wg.Add(1)
		go func(req JobRequest) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if id, err := s.Submit(req); err == nil {
					ids <- id
				}
				time.Sleep(time.Millisecond)
			}
		}(req)
	}

	// Scrapers: poll both endpoints, checking exposition validity and
	// that cumulative counts never go backwards. Failures are funneled to
	// the test goroutine (Fatalf must not run on these goroutines), and
	// polling is throttled so the workers keep CPU under -race.
	scrapeErrs := make(chan error, 8)
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/statz", "/metrics"} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			var lastCompleted, lastWall float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(5 * time.Millisecond)
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if path != "/metrics" {
					continue
				}
				samples, err := parseExposition(string(body))
				if err != nil {
					scrapeErrs <- err
					return
				}
				if v := samples["atomemu_jobs_completed_total"]; v < lastCompleted {
					scrapeErrs <- fmt.Errorf("jobs_completed_total went backwards: %v after %v", v, lastCompleted)
					return
				} else {
					lastCompleted = v
				}
				var wall float64
				for k, v := range samples {
					if strings.HasPrefix(k, "atomemu_job_wall_seconds_count") {
						wall += v
					}
				}
				if wall < lastWall {
					scrapeErrs <- fmt.Errorf("wall histogram count went backwards: %v after %v", wall, lastWall)
					return
				}
				lastWall = wall
			}
		}(path)
	}

	// Wait for every submitted job, then drain under scrape load.
	go func() {
		wg.Wait()
		close(ids)
	}()
	for id := range ids {
		awaitTerminal(t, s, id)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	close(stop)
	scrapeWG.Wait()
	close(scrapeErrs)
	for err := range scrapeErrs {
		t.Error(err)
	}

	samples := checkExposition(t, scrape(t, s))
	if samples["atomemu_jobs_completed_total"] < 12 {
		t.Errorf("completed = %v, want ≥12 healthy jobs", samples["atomemu_jobs_completed_total"])
	}
	if samples["atomemu_breaker_trips_total"] < 1 {
		t.Errorf("breaker never tripped under churn")
	}
}
