package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"atomemu/internal/checkpoint"
	"atomemu/internal/durable"
	"atomemu/internal/engine"
	"atomemu/internal/gac"
)

// TestIdempotentSubmitReturnsSameJob: a key retried after the original
// admission returns the original job id, on a purely in-memory server.
func TestIdempotentSubmitReturnsSameJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	req := JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 100, IdempotencyKey: "k1"}
	id1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("idempotent re-submit: got %s then %s, want the same id", id1, id2)
	}
	other, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 100, IdempotencyKey: "k2"})
	if err != nil {
		t.Fatal(err)
	}
	if other == id1 {
		t.Fatalf("distinct keys mapped to one job %s", id1)
	}
	awaitTerminal(t, s, id1)
	awaitTerminal(t, s, other)
	// The key keeps answering after the job is terminal.
	id3, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Fatalf("key re-submit after completion: got %s, want %s", id3, id1)
	}
	if got := s.Metrics().Accepted; got != 2 {
		t.Fatalf("accepted = %d, want 2 (retries must not re-admit)", got)
	}
}

// TestKeyedShedDistinct404: a keyed submission shed at admission gets an id,
// and GET /jobs/{id} answers 404 with reason "shed" — distinct from an id
// the server has never seen.
func TestKeyedShedDistinct404(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1, DrainGrace: 100 * time.Millisecond})
	// Occupy the single worker, then the single queue slot.
	spin := JobRequest{Scheme: "pico-cas", GAC: spinGAC, DeadlineMS: 2000}
	runningID, err := s.Submit(spin)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := s.Status(runningID); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first spin job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(spin); err != nil {
		t.Fatal(err)
	}

	_, err = s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 10, IdempotencyKey: "shed-key"})
	se, ok := err.(*SubmitError)
	if !ok || se.Status != http.StatusTooManyRequests {
		t.Fatalf("keyed submit into a full queue: err=%v, want 429 SubmitError", err)
	}
	if se.ID == "" {
		t.Fatal("keyed shed carried no id")
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + se.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET shed job = %d, want 404", resp.StatusCode)
	}
	var ans map[string]string
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("shed 404 body %q: %v", body, err)
	}
	if ans["reason"] != "shed" || ans["idempotency_key"] != "shed-key" {
		t.Fatalf("shed 404 body = %v, want reason=shed key=shed-key", ans)
	}
	// An unknown id stays a plain 404 without a reason.
	resp, err = http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	ans = nil
	json.Unmarshal(body, &ans)
	if resp.StatusCode != http.StatusNotFound || ans["reason"] != "" {
		t.Fatalf("unknown id: status=%d body=%v, want bare 404", resp.StatusCode, ans)
	}
}

// TestDurableRestartRoundTrip: jobs finished before a clean restart stay
// visible with their full results, idempotency keys keep answering, and a
// new submission continues the id sequence instead of reusing ids.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, DataDir: dir, Fsync: "always"}

	s1 := newTestServer(t, Options{Workers: opts.Workers, DataDir: dir, Fsync: opts.Fsync})
	req := JobRequest{Scheme: "pico-cas", GAC: counterGAC, Threads: 2, Arg: 300, IdempotencyKey: "rt-key"}
	id, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	before := awaitTerminal(t, s1, id)
	if before.State != StateDone {
		t.Fatalf("job: state=%s err=%q", before.State, before.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if m := s1.Metrics(); m.JournalAppends == 0 || m.JournalFsyncs == 0 {
		t.Fatalf("durable server journaled nothing: %+v", m)
	}

	s2 := newTestServer(t, Options{Workers: opts.Workers, DataDir: dir, Fsync: opts.Fsync})
	after, ok := s2.Status(id)
	if !ok {
		t.Fatalf("job %s lost across restart", id)
	}
	if after.State != StateDone || after.ExitCode != before.ExitCode {
		t.Fatalf("restarted status: state=%s exit=%d, want done/%d", after.State, after.ExitCode, before.ExitCode)
	}
	if !equalU32(after.Output, before.Output) {
		t.Fatalf("output changed across restart: %v != %v", after.Output, before.Output)
	}
	m := s2.Metrics()
	if m.RestartTerminal != 1 || m.JournalReplayed == 0 {
		t.Fatalf("replay metrics: terminal=%d replayed=%d", m.RestartTerminal, m.JournalReplayed)
	}
	if m.JournalCorrupt != 0 {
		t.Fatalf("clean journal replayed %d corrupt records", m.JournalCorrupt)
	}
	// The key still answers with the original job — no re-execution.
	id2, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("key after restart: got %s, want %s", id2, id)
	}
	// Fresh ids continue past the replayed maximum.
	fresh, err := s2.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == id {
		t.Fatalf("id %s reused across restart", id)
	}
	awaitTerminal(t, s2, fresh)
}

// crashedJobJournal simulates a daemon that was SIGKILLed: it writes the
// journal records (and optionally a spilled checkpoint) that the dead
// process would have left behind, without any server having run.
func crashedJobJournal(t *testing.T, dir string, recs []durable.Record) {
	t.Helper()
	jour, err := durable.Open(durable.Options{Dir: filepath.Join(dir, "journal"), Sync: durable.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := jour.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jour.Close(); err != nil {
		t.Fatal(err)
	}
}

// spillMidRunCheckpoint runs the job's program on a bare engine with
// checkpointing and writes a genuinely mid-run snapshot to the data dir as
// job id's spill, exactly as the dead daemon's spiller would have.
func spillMidRunCheckpoint(t *testing.T, dir, id, src string, arg uint32, every uint64) {
	t.Helper()
	im, err := gac.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig("pico-cas")
	cfg.CheckpointEvery = every
	var images [][]byte
	cfg.CheckpointSink = func(snap *checkpoint.Snapshot) {
		var b bytes.Buffer
		if err := checkpoint.Encode(&b, snap); err != nil {
			t.Error(err)
			return
		}
		images = append(images, b.Bytes())
	}
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, arg); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(images) < 2 {
		t.Fatalf("only %d checkpoints spilled; lower every (%d)", len(images), every)
	}
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckptDir, id), images[len(images)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRestartResumesFromDurableCheckpoint is the recovery matrix after a
// simulated SIGKILL: a started job with a good checkpoint resumes from it;
// one whose checkpoint is corrupt requeues from scratch; one past the
// restart-resume budget requeues; and all three finish with the output an
// uninterrupted run would print.
func TestRestartResumesFromDurableCheckpoint(t *testing.T) {
	const arg = 4000
	dir := t.TempDir()
	mk := func(key string) json.RawMessage {
		raw, err := json.Marshal(JobRequest{
			Scheme: "pico-cas", GAC: counterGAC, Arg: arg, IdempotencyKey: key,
			Config: JobConfig{CheckpointEvery: 2000},
		})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	crashedJobJournal(t, dir, []durable.Record{
		{Type: durable.TypeSubmitted, Job: "job-1", Key: "resume-key", Request: mk("resume-key")},
		{Type: durable.TypeStarted, Job: "job-1"},
		{Type: durable.TypeSubmitted, Job: "job-2", Key: "corrupt-key", Request: mk("corrupt-key")},
		{Type: durable.TypeStarted, Job: "job-2"},
		{Type: durable.TypeSubmitted, Job: "job-3", Key: "budget-key", Request: mk("budget-key")},
		{Type: durable.TypeStarted, Job: "job-3", Resumes: 7},
	})
	spillMidRunCheckpoint(t, dir, "job-1", counterGAC, arg, 2000)
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.WriteFile(filepath.Join(ckptDir, "job-2"), []byte("not a checkpoint image"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{Workers: 2, DataDir: dir, MaxRestartResumes: 3})
	m := s.Metrics()
	if m.RestartResumed != 1 {
		t.Fatalf("resumed = %d, want 1 (only job-1 had a usable checkpoint)", m.RestartResumed)
	}
	if m.RestartRequeued != 2 {
		t.Fatalf("requeued = %d, want 2 (corrupt checkpoint + spent budget)", m.RestartRequeued)
	}
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		st := awaitTerminal(t, s, id)
		if st.State != StateDone || st.ExitCode != 0 {
			t.Fatalf("%s: state=%s exit=%d err=%q", id, st.State, st.ExitCode, st.Error)
		}
		if !equalU32(st.Output, []uint32{arg}) {
			t.Fatalf("%s output = %v, want [%d] — recovery must not change results", id, st.Output, arg)
		}
		if st.RestartResumes == 0 {
			t.Fatalf("%s restart_resumes = 0, want the survived restart counted", id)
		}
	}
	// Snapshots carry cumulative counters, so a resumed job executes exactly
	// the guest instructions an uninterrupted run would — resume is invisible
	// in the guest-visible telemetry. (Virtual time may differ slightly: the
	// translation cache is host state, not snapshot state, so a resumed
	// machine re-pays translation cost for blocks it had already compiled.)
	resumed, _ := s.Status("job-1")
	scratch, _ := s.Status("job-2")
	if resumed.GuestInstrs != scratch.GuestInstrs {
		t.Fatalf("resumed guest instrs %d diverge from uninterrupted %d",
			resumed.GuestInstrs, scratch.GuestInstrs)
	}
	// Keys replayed from the journal answer without re-admission.
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: arg, IdempotencyKey: "resume-key"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-1" {
		t.Fatalf("resume-key answered %s, want job-1", id)
	}
}

// TestRecoveryToleratesCorruptJournalTail: garbage appended to the journal
// (a torn final write) must not lose the intact records before it, and must
// never fail startup.
func TestRecoveryToleratesCorruptJournalTail(t *testing.T) {
	dir := t.TempDir()
	raw, _ := json.Marshal(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 50, IdempotencyKey: "torn"})
	crashedJobJournal(t, dir, []durable.Record{
		{Type: durable.TypeSubmitted, Job: "job-1", Key: "torn", Request: raw},
	})
	// Tear the tail of the newest segment with half a frame of garbage.
	segs, err := filepath.Glob(filepath.Join(dir, "journal", "*.waj"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := newTestServer(t, Options{Workers: 1, DataDir: dir})
	st := awaitTerminal(t, s, "job-1")
	if st.State != StateDone {
		t.Fatalf("job-1 after torn tail: state=%s err=%q", st.State, st.Error)
	}
	if got := s.Metrics().JournalReplayed; got != 1 {
		t.Fatalf("replayed = %d, want the 1 intact record", got)
	}
}

// TestDurableJobSpillsCheckpoints: a checkpointing job on a durable server
// spills snapshots to disk while running, the spill counters advance, and a
// terminal job's spill file is deleted (it can never be resumed).
func TestDurableJobSpillsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{Workers: 1, DataDir: dir})
	id, err := s.Submit(JobRequest{
		Scheme: "pico-cas", GAC: counterGAC, Arg: 4000,
		Config: JobConfig{CheckpointEvery: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state=%s err=%q", st.State, st.Error)
	}
	m := s.Metrics()
	if m.CkptSpills == 0 || m.CkptSpillBytes == 0 {
		t.Fatalf("no checkpoint spills recorded: %+v", m)
	}
	if m.CkptSpillErrors != 0 {
		t.Fatalf("spill errors: %d", m.CkptSpillErrors)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt", id)); !os.IsNotExist(err) {
		t.Fatalf("terminal job's spill file still on disk (err=%v)", err)
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
