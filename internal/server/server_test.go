package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atomemu/internal/asm"
	"atomemu/internal/engine"
)

// counterGAC is the quick healthy job: n atomic increments, print, exit.
const counterGAC = `
var counter;
func main(n) {
    var i = 0;
    while (i < n) {
        atomic_add(&counter, 1);
        i = i + 1;
    }
    print(counter);
    exit(0);
}
`

// wedgedGAC can never succeed an SC (the store-exclusive targets a
// different address than the load-exclusive), so the progress watchdog
// trips — the canonical scheme-implicating failure for breaker tests.
const wedgedGAC = `
var x;
var y;
func main(n) {
    while (1) {
        ll(&x);
        sc(&y, 1);
    }
}
`

// spinGAC burns cycles until a deadline or cancellation stops it.
const spinGAC = `
var sink;
func main(n) {
    while (1) {
        sink = sink + 1;
    }
}
`

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

func awaitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestGACJobCompletes(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Threads: 2, Arg: 500})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateDone || st.Class != "ok" || st.ExitCode != 0 {
		t.Fatalf("state=%s class=%s exit=%d err=%q", st.State, st.Class, st.ExitCode, st.Error)
	}
	if len(st.Output) != 2 {
		t.Fatalf("output = %v, want two printed counters", st.Output)
	}
	if st.SCs == 0 || st.GuestInstrs == 0 || st.VirtualTime == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if got := s.Metrics().Completed; got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
}

func TestImageJobCompletes(t *testing.T) {
	im, err := asm.Assemble(`
.org 0x10000
.entry main
main:
    movi r0, #41
    addi r0, r0, #1
    svc #6
    movi r0, #0
    svc #1
`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 1})
	id, err := s.Submit(JobRequest{Scheme: "hst", ImageB64: base64.StdEncoding.EncodeToString(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateDone || len(st.Output) != 1 || st.Output[0] != 42 {
		t.Fatalf("state=%s output=%v err=%q", st.State, st.Output, st.Error)
	}
}

func TestAdmissionRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"unknown scheme", JobRequest{Scheme: "qemu", GAC: counterGAC}, "unknown scheme"},
		{"no program", JobRequest{Scheme: "hst"}, "exactly one"},
		{"both programs", JobRequest{Scheme: "hst", GAC: counterGAC, ImageB64: "AA=="}, "exactly one"},
		{"bad gac", JobRequest{Scheme: "hst", GAC: "func main( {"}, "gac"},
		{"bad image", JobRequest{Scheme: "hst", ImageB64: "!!!"}, "image_b64"},
		{"too many threads", JobRequest{Scheme: "hst", GAC: counterGAC, Threads: 10_000}, "threads"},
		{"bad config", JobRequest{Scheme: "hst", GAC: counterGAC, Config: JobConfig{HashBits: 31}}, "HashBits"},
		{"fault rules not allowed", JobRequest{Scheme: "hst", GAC: counterGAC,
			Fault: []FaultRule{{Op: "mem-store", Action: "fault"}}}, "fault injection"},
	}
	for _, tc := range cases {
		_, err := s.Submit(tc.req)
		se, ok := err.(*SubmitError)
		if !ok || se.Status != http.StatusBadRequest || !strings.Contains(se.Msg, tc.want) {
			t.Errorf("%s: err = %v, want 400 containing %q", tc.name, err, tc.want)
		}
	}
}

func TestAdmissionRejectsBadFaultRules(t *testing.T) {
	// Every malformed fault-rule kind must be rejected at admission (400)
	// with an error naming the offending field, before the job is queued.
	s := newTestServer(t, Options{Workers: 1, AllowFaultInjection: true})
	cases := []struct {
		name string
		rule FaultRule
		want string
	}{
		{"unknown op", FaultRule{Op: "txn-retire", Action: "abort"}, "fault[0].op"},
		{"unknown action", FaultRule{Op: "txn-commit", Action: "explode"}, "fault[0].action"},
		{"empty op", FaultRule{Action: "abort"}, "fault[0].op"},
		{"action none spelled out", FaultRule{Op: "txn-commit", Action: "none"}, "fault[0].action"},
		{"incompatible pair", FaultRule{Op: "hash-unlock", Action: "abort"}, "fault[0]"},
		{"mmu site with tid", FaultRule{Op: "mem-load", Action: "fault", TID: 3}, "fault[0].tid"},
	}
	for _, tc := range cases {
		_, err := s.Submit(JobRequest{Scheme: "hst", GAC: counterGAC, Fault: []FaultRule{tc.rule}})
		se, ok := err.(*SubmitError)
		if !ok || se.Status != http.StatusBadRequest || !strings.Contains(se.Msg, tc.want) {
			t.Errorf("%s: err = %v, want 400 naming %q", tc.name, err, tc.want)
		}
	}

	// The index in the error tracks the offending rule, not just rule 0.
	_, err := s.Submit(JobRequest{Scheme: "hst", GAC: counterGAC, Fault: []FaultRule{
		{Op: "txn-commit", Action: "abort"},
		{Op: "bogus", Action: "abort"},
	}})
	se, ok := err.(*SubmitError)
	if !ok || se.Status != http.StatusBadRequest || !strings.Contains(se.Msg, "fault[1].op") {
		t.Errorf("second-rule error = %v, want 400 naming fault[1].op", err)
	}

	// A well-formed rule still passes admission.
	if _, err := s.Submit(JobRequest{Scheme: "hst", GAC: counterGAC, Fault: []FaultRule{
		{Op: "txn-commit", Action: "poison", After: 10, Count: 2},
	}}); err != nil {
		t.Errorf("valid fault rule rejected: %v", err)
	}
}

func TestQueueOverflowSheds(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1, DrainGrace: 50 * time.Millisecond})
	var accepted, shed int
	for i := 0; i < 6; i++ {
		_, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: spinGAC, DeadlineMS: 300})
		switch {
		case err == nil:
			accepted++
		default:
			se, ok := err.(*SubmitError)
			if !ok || se.Status != http.StatusTooManyRequests {
				t.Fatalf("unexpected submit error: %v", err)
			}
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("six submissions into a 1-worker/1-slot server shed nothing")
	}
	if got := s.Metrics().Shed; got != uint64(shed) {
		t.Fatalf("shed metric = %d, want %d", got, shed)
	}
	// Every accepted job still reaches a terminal state (drain in cleanup
	// would also catch a stuck one).
	for _, st := range s.Jobs() {
		awaitTerminal(t, s, st.ID)
	}
}

func TestWallDeadlineCancelsJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: spinGAC, DeadlineMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateCanceled {
		t.Fatalf("state = %s (err %q), want canceled", st.State, st.Error)
	}
	if s.Metrics().Canceled != 1 {
		t.Fatalf("canceled metric = %d, want 1", s.Metrics().Canceled)
	}
}

func TestVirtualDeadlineFailsJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: spinGAC,
		Config: JobConfig{VirtualDeadline: 100_000}})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "virtual deadline") {
		t.Fatalf("state=%s err=%q, want failed on the virtual deadline", st.State, st.Error)
	}
}

func TestBreakerDemotesToHSTAndProbes(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	wedged := JobRequest{Scheme: "pico-cas", GAC: wedgedGAC,
		Config: JobConfig{WatchdogSCFails: 200}}
	for i := 0; i < 2; i++ {
		id, err := s.Submit(wedged)
		if err != nil {
			t.Fatal(err)
		}
		st := awaitTerminal(t, s, id)
		if st.State != StateFailed || st.Class != "fault" {
			t.Fatalf("wedged job %d: state=%s class=%s err=%q", i, st.State, st.Class, st.Error)
		}
	}
	if got := s.Metrics().BreakerTrips; got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}
	// While open, a healthy pico-cas job runs demoted on portable HST.
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id)
	if st.State != StateDone || st.SchemeEffective != "hst" || !st.Demoted {
		t.Fatalf("demoted run: state=%s effective=%s demoted=%v", st.State, st.SchemeEffective, st.Demoted)
	}
	if s.Metrics().Demoted == 0 {
		t.Fatal("demoted metric not incremented")
	}

	// With the cooldown elapsed, the next job is the half-open probe: it
	// runs natively and its success closes the breaker.
	s.breakers.mu.Lock()
	s.breakers.get("pico-cas").openedAt = time.Now().Add(-2 * time.Hour)
	s.breakers.mu.Unlock()
	id, err = s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 100})
	if err != nil {
		t.Fatal(err)
	}
	st = awaitTerminal(t, s, id)
	if st.State != StateDone || st.SchemeEffective != "pico-cas" || st.Demoted {
		t.Fatalf("probe run: state=%s effective=%s demoted=%v", st.State, st.SchemeEffective, st.Demoted)
	}
	for _, b := range s.Breakers() {
		if b.Scheme == "pico-cas" && b.State != "closed" {
			t.Fatalf("breaker should close after a passing probe, is %s", b.State)
		}
	}
}

func TestDrainFinishesAcceptedJobsAndRefusesNew(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueDepth: 8, DrainGrace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 2_000})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A job that only cancellation can stop: drain's grace-period cancel
	// is its checkpoint-abort path.
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: spinGAC, DeadlineMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, id)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(JobRequest{Scheme: "hst", GAC: counterGAC}); err == nil {
		t.Fatal("submit after drain should be refused")
	} else if se, ok := err.(*SubmitError); !ok || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %v, want 503", err)
	}
	for _, id := range ids {
		st, _ := s.Status(id)
		if !st.State.Terminal() {
			t.Errorf("job %s not terminal after drain: %s", id, st.State)
		}
	}
}

// TestWorkerPanicIsContained drives the containment path directly: a job
// with no image panics inside run (nil dereference in LoadImage); the
// worker must record a failed job, count the panic, and keep the process
// alive.
func TestWorkerPanicIsContained(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	j := &job{
		id:      "job-panic",
		cfg:     engine.DefaultConfig("pico-cas"),
		threads: 1,
		wallcap: time.Second,
		status:  JobStatus{ID: "job-panic", State: StateQueued, SchemeRequested: "pico-cas", ExitCode: -1},
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.jobWG.Add(1)
	s.run(j)
	st, _ := s.Status(j.id)
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("state=%s err=%q, want contained panic", st.State, st.Error)
	}
	if s.Metrics().Panics != 1 {
		t.Fatalf("panics metric = %d, want 1", s.Metrics().Panics)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(JobRequest{Scheme: "hst", GAC: counterGAC, Arg: 50})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	awaitTerminal(t, s, sub.ID)

	resp, err = http.Get(ts.URL + "/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateDone || len(st.Output) != 1 || st.Output[0] != 50 {
		t.Fatalf("GET /jobs/%s: %+v", sub.ID, st)
	}

	for _, path := range []string{"/healthz", "/readyz", "/statz", "/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(ts.URL + "/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/nope = %d, want 404", resp.StatusCode)
	}
}
