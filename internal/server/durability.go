package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atomemu/internal/checkpoint"
	"atomemu/internal/durable"
)

// This file is the server's durability layer, enabled by Options.DataDir:
// every admission-relevant transition is journaled write-ahead (package
// durable), running jobs spill their latest engine checkpoint to
// <datadir>/ckpt/<jobid>, and New replays the journal so a daemon that was
// SIGKILLed mid-burst restarts with nothing lost — terminal jobs answer
// GETs idempotently, queued jobs requeue, and running jobs resume from
// their last durable checkpoint (falling back to a requeue from scratch
// when no checkpoint survived, bounded by MaxRestartResumes).

// durability is the per-server durable state. nil on servers without a
// DataDir; every hook checks.
type durability struct {
	jourDir    string
	ckptDir    string
	jour       *durable.Journal
	maxResumes int
	replay     durable.ReplayStats
	closeOnce  sync.Once

	spills         atomic.Uint64
	spillBytes     atomic.Uint64
	spillErrors    atomic.Uint64
	ckptTempsSwept atomic.Uint64

	journalErrors    atomic.Uint64
	ckptDecodeErrors atomic.Uint64

	restartResumed  atomic.Uint64
	restartRequeued atomic.Uint64
	restartTerminal atomic.Uint64
}

// initDurability replays the journal, rebuilds the server's job, shed and
// idempotency state, and opens a fresh journal segment. Recovered
// non-terminal jobs are appended to requeue in their original admission
// order; the caller enqueues them before starting workers. Torn or corrupt
// journal bytes never fail startup (they are tolerated and counted); only
// real I/O errors do.
func (s *Server) initDurability(requeue *[]*job) error {
	sync, err := durable.ParseSyncPolicy(s.opts.Fsync)
	if err != nil {
		return err
	}
	d := &durability{
		jourDir:    filepath.Join(s.opts.DataDir, "journal"),
		ckptDir:    filepath.Join(s.opts.DataDir, "ckpt"),
		maxResumes: s.opts.MaxRestartResumes,
	}
	if err := os.MkdirAll(d.ckptDir, 0o755); err != nil {
		return err
	}
	d.sweepTempSpills(s)
	recs, rst, err := durable.Replay(d.jourDir)
	if err != nil {
		return err
	}
	d.replay = rst

	// Fold the record stream into per-job end states, preserving admission
	// order. Later records win (a re-submitted shed key clears the shed
	// marker; a finished record supersedes everything). The server maps are
	// mutated under the lock: with BackgroundReplay, status reads are
	// already being served while this runs.
	s.mu.Lock()
	type jobReplay struct {
		id       string
		key      string
		req      json.RawMessage
		started  bool
		resumes  int
		finished bool
		status   json.RawMessage
	}
	byID := make(map[string]*jobReplay)
	var order []string
	var maxID uint64
	get := func(id string) *jobReplay {
		jr := byID[id]
		if jr == nil {
			jr = &jobReplay{id: id}
			byID[id] = jr
			order = append(order, id)
		}
		return jr
	}
	for _, r := range recs {
		if n, ok := parseJobID(r.Job); ok && n > maxID {
			maxID = n
		}
		switch r.Type {
		case durable.TypeSubmitted:
			jr := get(r.Job)
			jr.key, jr.req = r.Key, r.Request
			if r.Key != "" {
				s.idemp[r.Key] = r.Job
				if old := s.shedByKey[r.Key]; old != "" {
					delete(s.shedByKey, r.Key)
					delete(s.shedByID, old)
				}
			}
		case durable.TypeStarted:
			jr := get(r.Job)
			jr.started = true
			jr.resumes = r.Resumes
		case durable.TypeCheckpointed:
			// The checkpoint file itself is the source of truth; the record
			// is observability. Nothing to fold.
		case durable.TypeFinished:
			jr := get(r.Job)
			jr.finished = true
			jr.status = r.Status
			jr.key = r.Key
			if r.Key != "" {
				s.idemp[r.Key] = r.Job
			}
		case durable.TypeShed:
			if r.Key != "" && s.idemp[r.Key] == "" {
				s.shedByKey[r.Key] = r.Job
				s.shedByID[r.Job] = r.Key
			}
		}
	}
	s.nextID = maxID

	now := time.Now()
	for _, id := range order {
		jr := byID[id]
		switch {
		case jr.finished:
			// Terminal: re-register for idempotent GETs; never runs again.
			j := &job{id: id, key: jr.key}
			if err := json.Unmarshal(jr.status, &j.status); err != nil {
				j.status = JobStatus{State: StateFailed, ExitCode: -1,
					Error: fmt.Sprintf("recovery: stored status unreadable: %v", err)}
			}
			j.status.ID = id
			s.jobs[id] = j
			d.restartTerminal.Add(1)
		case jr.req != nil:
			j := s.recoverJob(d, jr.id, jr.key, jr.req, jr.started, jr.resumes, now)
			s.jobs[id] = j
			if j.status.State.Terminal() {
				// Request no longer admissible (policy changed across the
				// restart): terminal-failed, still visible to GETs.
				d.restartTerminal.Add(1)
				continue
			}
			*requeue = append(*requeue, j)
		}
	}
	s.mu.Unlock()

	jour, err := durable.Open(durable.Options{
		Dir:           d.jourDir,
		Sync:          sync,
		CompactSource: s.liveRecords,
	})
	if err != nil {
		return err
	}
	d.jour = jour
	// Publish the durability layer only now that it is whole: concurrent
	// Metrics reads during a background replay must see nil or a d whose
	// journal is open, never a half-built one.
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
	// Collapse replayed history into one segment holding just the live set,
	// so journal size tracks live work, not daemon restarts.
	return jour.CompactNow()
}

// recoverJob rebuilds a runnable job from its journaled submission. A
// started job tries to resume from its durable checkpoint; without one (or
// past the restart-resume budget) it requeues from scratch.
func (s *Server) recoverJob(d *durability, id, key string, raw json.RawMessage, started bool, resumes int, now time.Time) *job {
	var req JobRequest
	var j *job
	err := json.Unmarshal(raw, &req)
	if err == nil {
		j, err = s.decode(req)
	}
	if err != nil {
		return &job{id: id, key: key, status: JobStatus{
			ID: id, State: StateFailed, ExitCode: -1,
			Error:      fmt.Sprintf("recovery: request no longer admissible: %v", err),
			EnqueuedAt: now, FinishedAt: now,
		}}
	}
	j.id = id
	j.key = key
	j.rawReq = raw
	j.status.ID = id
	j.status.EnqueuedAt = now
	if started {
		j.resumes = resumes + 1
		if d.maxResumes < 0 || j.resumes <= d.maxResumes {
			if snap, ok := d.loadSnapshot(s, id); ok {
				j.resumeSnap = snap
				d.restartResumed.Add(1)
				j.status.RestartResumes = j.resumes
				return j
			}
		}
		// No usable checkpoint, or budget spent: run it again from scratch.
		j.status.RestartResumes = j.resumes
	}
	d.restartRequeued.Add(1)
	return j
}

// loadSnapshot reads and decodes a job's spilled checkpoint. Any damage —
// missing file, torn write, corrupt image — is a "no checkpoint" answer,
// never a startup failure.
func (d *durability) loadSnapshot(s *Server, id string) (*checkpoint.Snapshot, bool) {
	data, err := os.ReadFile(filepath.Join(d.ckptDir, id))
	if err != nil {
		return nil, false
	}
	snap, err := checkpoint.DecodeBytes(data)
	if err != nil {
		d.ckptDecodeErrors.Add(1)
		s.opts.Logger.Printf("server: checkpoint for %s unreadable, requeueing from scratch: %v", id, err)
		return nil, false
	}
	return snap, true
}

// sweepTempSpills deletes stale spill temp files left under the checkpoint
// directory by a crash between a temp's write and its rename (writeSnapshot
// is temp+fsync+rename, so a SIGKILL in that window orphans the temp
// forever — no later spill or terminal cleanup ever touches its random
// suffix). Runs once at startup, before replay resumes any job: every temp
// present now is garbage by construction, since a live spill can only be
// in flight while its job's machine runs, and nothing runs yet.
func (d *durability) sweepTempSpills(s *Server) {
	ents, err := os.ReadDir(d.ckptDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if err := os.Remove(filepath.Join(d.ckptDir, e.Name())); err != nil {
			s.opts.Logger.Printf("server: sweeping stale spill temp %s: %v", e.Name(), err)
			continue
		}
		d.ckptTempsSwept.Add(1)
	}
}

// removeSnapshot deletes a terminal job's spill; it can never be resumed.
func (d *durability) removeSnapshot(id string) {
	if err := os.Remove(filepath.Join(d.ckptDir, id)); err != nil && !os.IsNotExist(err) {
		d.spillErrors.Add(1)
	}
}

// journalAppend writes one record if durability is on. Journal failures
// degrade durability, not availability: they are logged and counted, and
// the job proceeds.
func (s *Server) journalAppend(rec durable.Record) {
	d := s.dur
	if d == nil || d.jour == nil {
		return
	}
	rec.UnixMS = time.Now().UnixMilli()
	if err := d.jour.Append(rec); err != nil {
		d.journalErrors.Add(1)
		s.opts.Logger.Printf("server: journal append (%s %s): %v", rec.Type, rec.Job, err)
	}
}

// journalFinish appends a job's terminal record and forces it to disk
// regardless of the batch policy: "done" answered to a client must survive
// the next crash, or a restart would re-run a completed job.
func (s *Server) journalFinish(j *job, st JobStatus) {
	d := s.dur
	if d == nil {
		return
	}
	b, err := json.Marshal(st)
	if err != nil {
		d.journalErrors.Add(1)
		return
	}
	s.journalAppend(durable.Record{Type: durable.TypeFinished, Job: j.id, Key: j.key, Status: b})
	if err := d.jour.Sync(); err != nil {
		d.journalErrors.Add(1)
	}
	d.removeSnapshot(j.id)
}

// liveRecords is the journal's compact source: the minimal record set that
// reproduces the server's current durable state. Runs under the journal
// lock; takes s.mu and each job's mu (never the reverse order anywhere).
func (s *Server) liveRecords() []durable.Record {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sheds := make(map[string]string, len(s.shedByID))
	for id, key := range s.shedByID {
		sheds[id] = key
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool {
		a, _ := parseJobID(jobs[i].id)
		b, _ := parseJobID(jobs[k].id)
		return a < b
	})
	var out []durable.Record
	for _, j := range jobs {
		st := j.snapshot()
		if st.State.Terminal() {
			b, err := json.Marshal(st)
			if err != nil {
				continue
			}
			out = append(out, durable.Record{Type: durable.TypeFinished, Job: j.id, Key: j.key, Status: b})
			continue
		}
		out = append(out, durable.Record{Type: durable.TypeSubmitted, Job: j.id, Key: j.key, Request: j.rawReq})
		if st.State == StateRunning {
			out = append(out, durable.Record{Type: durable.TypeStarted, Job: j.id, Resumes: j.resumes})
		}
	}
	for id, key := range sheds {
		out = append(out, durable.Record{Type: durable.TypeShed, Job: id, Key: key})
	}
	return out
}

// closeJournal flushes and closes the journal at the end of a drain.
func (s *Server) closeJournal() {
	if d := s.dur; d != nil && d.jour != nil {
		d.closeOnce.Do(func() {
			if err := d.jour.Close(); err != nil {
				s.opts.Logger.Printf("server: closing journal: %v", err)
			}
		})
	}
}

func parseJobID(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// --- checkpoint spilling ---

// spiller is a per-run writer goroutine fed by the engine's CheckpointSink.
// The sink must never block the capturing vCPU, so the hand-off channel is
// latest-wins: a spill slower than the checkpoint cadence just skips
// intermediate snapshots — only the newest matters for recovery.
type spiller struct {
	s     *Server
	jobID string
	ch    chan *checkpoint.Snapshot
	done  chan struct{}
}

func (s *Server) newSpiller(jobID string) *spiller {
	sp := &spiller{s: s, jobID: jobID, ch: make(chan *checkpoint.Snapshot, 1), done: make(chan struct{})}
	go sp.loop()
	return sp
}

// sink is installed as engine Config.CheckpointSink. Called outside the
// quiet window with an immutable snapshot; never blocks.
func (sp *spiller) sink(snap *checkpoint.Snapshot) {
	for {
		select {
		case sp.ch <- snap:
			return
		default:
			// Full: evict the stale snapshot and retry with the newer one.
			select {
			case <-sp.ch:
			default:
			}
		}
	}
}

func (sp *spiller) loop() {
	defer close(sp.done)
	for snap := range sp.ch {
		sp.s.dur.writeSnapshot(sp.s, sp.jobID, snap)
	}
}

// stop drains the final snapshot and waits for it to hit disk. Call only
// after the machine has stopped (no further sink calls), and before the
// terminal record deletes the spill file.
func (sp *spiller) stop() {
	close(sp.ch)
	<-sp.done
}

// countingWriter counts encoded bytes for the spill metrics.
type countingWriter struct {
	f *os.File
	n uint64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += uint64(n)
	return n, err
}

// writeSnapshot spills one snapshot crash-safely: encode to a temp file,
// fsync, rename over <ckptDir>/<jobID>. A reader (the recovery path of a
// later process) sees either the old complete image or the new one, never
// a torn mix.
func (d *durability) writeSnapshot(s *Server, jobID string, snap *checkpoint.Snapshot) {
	fail := func(stage string, err error) {
		d.spillErrors.Add(1)
		s.opts.Logger.Printf("server: spilling checkpoint for %s (%s): %v", jobID, stage, err)
	}
	tmp, err := os.CreateTemp(d.ckptDir, jobID+".tmp-*")
	if err != nil {
		fail("create", err)
		return
	}
	cw := &countingWriter{f: tmp}
	if err := checkpoint.Encode(cw, snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail("encode", err)
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail("fsync", err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fail("close", err)
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(d.ckptDir, jobID)); err != nil {
		os.Remove(tmp.Name())
		fail("rename", err)
		return
	}
	d.spills.Add(1)
	d.spillBytes.Add(cw.n)
	s.journalAppend(durable.Record{Type: durable.TypeCheckpointed, Job: jobID, VirtualTime: snap.VirtualTime})
}
