package server

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"sync"
	"time"

	"atomemu/internal/asm"
	"atomemu/internal/checkpoint"
	"atomemu/internal/engine"
	"atomemu/internal/faultinject"
	"atomemu/internal/gac"
	"atomemu/internal/stats"
)

// JobRequest is the wire form of a job submission: a guest program (GAC
// source or an assembled GA32 image) plus the safe subset of the engine
// Config a tenant may set. Everything else — scheme construction, worker
// scheduling, breaker routing — belongs to the server.
type JobRequest struct {
	// Scheme selects the emulation scheme (core.SchemeNames).
	Scheme string `json:"scheme"`
	// GAC is guest source compiled at admission; ImageB64 is a
	// base64-encoded assembled image (asm.Image.WriteTo). Exactly one.
	GAC      string `json:"gac,omitempty"`
	ImageB64 string `json:"image_b64,omitempty"`
	// Threads spawns this many workers at the image entry (default 1).
	Threads int `json:"threads,omitempty"`
	// Arg is passed in r0 to every worker.
	Arg uint32 `json:"arg,omitempty"`
	// DeadlineMS is the job's wall-clock budget; 0 takes the server
	// default, and the server cap always applies.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Config is the tenant-settable engine Config subset.
	Config JobConfig `json:"config,omitempty"`
	// Fault holds fault-injection rules, accepted only when the server
	// was started with fault injection allowed (soak and CI harnesses).
	Fault []FaultRule `json:"fault,omitempty"`
	// IdempotencyKey, when set, makes the submission exactly-once: a retry
	// carrying the same key (same client after a lost 202, or any client
	// after a daemon restart) returns the originally admitted job's id
	// instead of running the program again. Keys survive restarts on
	// durable servers. A key whose submission was shed may be retried.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Tenant attributes the job to a tenant for fairness accounting. The
	// worker records it verbatim (the router enforces per-tenant quotas);
	// empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// JobConfig is the engine Config subset a job may set. Zero values defer to
// the engine defaults (Config.normalized), except VirtualDeadline, where
// zero defers to the server's default budget.
type JobConfig struct {
	MemBytes         uint32 `json:"mem_bytes,omitempty"`
	HashBits         uint   `json:"hash_bits,omitempty"`
	MaxGuestInstrs   uint64 `json:"max_guest_instrs,omitempty"`
	FuseAtomics      bool   `json:"fuse_atomics,omitempty"`
	CheckpointEvery  uint64 `json:"checkpoint_every,omitempty"`
	RecoveryAttempts int    `json:"recovery_attempts,omitempty"`
	VirtualDeadline  uint64 `json:"virtual_deadline,omitempty"`
	WatchdogSCFails  int64  `json:"watchdog_sc_fails,omitempty"`
	// ChainBudget enables direct block chaining (max blocks per dispatch);
	// 0 leaves it off. Tiered starts blocks in the interpreter and promotes
	// at HotThreshold executions (0 takes the engine default threshold).
	ChainBudget  int  `json:"chain_budget,omitempty"`
	Tiered       bool `json:"tiered,omitempty"`
	HotThreshold int  `json:"hot_threshold,omitempty"`
}

// FaultRule is the wire form of a faultinject.Rule.
type FaultRule struct {
	Op     string `json:"op"`     // txn-begin txn-commit hash-unlock mem-load mem-store
	Action string `json:"action"` // abort poison stick-lock fault
	TID    uint32 `json:"tid,omitempty"`
	Addr   uint32 `json:"addr,omitempty"`
	After  uint64 `json:"after,omitempty"`
	Count  uint64 `json:"count,omitempty"`
}

// rule resolves the wire form through faultinject's canonical parsers and
// the op/action compatibility matrix, so the server rejects exactly what
// the injector would ignore. field names the offending JSON field ("op",
// "action", "tid") when the error is attributable to one; it is empty for
// whole-rule errors.
func (r FaultRule) rule() (faultinject.Rule, string, error) {
	op, err := faultinject.ParseOp(r.Op)
	if err != nil {
		return faultinject.Rule{}, "op", err
	}
	act, err := faultinject.ParseAction(r.Action)
	if err != nil {
		return faultinject.Rule{}, "action", err
	}
	out := faultinject.Rule{Op: op, Action: act, TID: r.TID, Addr: r.Addr, After: r.After, Count: r.Count}
	if err := out.Validate(); err != nil {
		field := ""
		if (op == faultinject.OpMemLoad || op == faultinject.OpMemStore) && r.TID != 0 {
			field = "tid"
		}
		return out, field, err
	}
	return out, "", nil
}

// JobState is a job's lifecycle position. Terminal states: done, failed,
// canceled.
type JobState string

// Job states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of GET /jobs/{id}. For a running job the
// counters are a live quiesced snapshot; for a terminal job they are final.
type JobStatus struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Tenant string   `json:"tenant,omitempty"`
	// SchemeRequested is what the tenant asked for; SchemeEffective is
	// what the job ran under (the breaker demotes to portable HST while
	// open, and rollback recovery may demote mid-run).
	SchemeRequested string `json:"scheme_requested"`
	SchemeEffective string `json:"scheme_effective,omitempty"`
	Demoted         bool   `json:"demoted,omitempty"`
	// WarmForked marks a job started from a warm-pool template (a prior
	// run's first checkpoint) instead of a cold image load.
	WarmForked bool `json:"warm_forked,omitempty"`
	// Class/ExitCode mirror cmd/atomemu's exit classification
	// (engine.ClassifyStop); Error is the stop error, if any.
	Class    string `json:"class,omitempty"`
	ExitCode int    `json:"exit_code"`
	Error    string `json:"error,omitempty"`

	// RestartResumes counts daemon restarts this job survived as a running
	// job (resumed from its durable checkpoint or requeued from scratch).
	RestartResumes int `json:"restart_resumes,omitempty"`

	Output      []uint32 `json:"output,omitempty"`
	VirtualTime uint64   `json:"virtual_time"`
	GuestInstrs uint64   `json:"guest_instrs"`
	SCs         uint64   `json:"scs"`
	SCFails     uint64   `json:"sc_fails"`
	Checkpoints uint64   `json:"checkpoints"`
	Restores    uint64   `json:"restores"`
	Fallbacks   uint64   `json:"fallbacks"`
	Watchdogs   uint64   `json:"watchdog_trips"`

	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
}

// job is the server-side job record. The mutex guards every mutable field;
// machine is non-nil only while running, so status requests can take a live
// snapshot without keeping finished machines alive.
type job struct {
	id  string
	im  *asm.Image
	cfg engine.Config // validated at admission; Scheme set per run by the breaker

	threads int
	arg     uint32
	wallcap time.Duration

	// Warm-start identity, derived at decode: the content hash and guest
	// span of the job's image, shared by the cross-job translation store
	// and the warm-template key.
	imageHash [32]byte
	imageBase uint32
	imageSize uint32

	// Durability fields. key is the idempotency key (may be set without a
	// DataDir); rawReq is the original wire JSON, journaled so a restart
	// can rebuild the job; resumes counts restarts survived while running;
	// resumeSnap, when non-nil, is the decoded checkpoint the next run
	// resumes from instead of loading the image.
	key        string
	rawReq     []byte
	resumes    int
	resumeSnap *checkpoint.Snapshot

	mu      sync.Mutex
	status  JobStatus
	machine *engine.Machine
	cancel  func()
}

// decode turns a JobRequest into a runnable job, enforcing the server's
// admission policy. All failures here are the caller's fault (HTTP 400).
func (s *Server) decode(req JobRequest) (*job, error) {
	if (req.GAC == "") == (req.ImageB64 == "") {
		return nil, fmt.Errorf("exactly one of gac or image_b64 is required")
	}
	var im *asm.Image
	var err error
	if req.GAC != "" {
		if len(req.GAC) > s.opts.MaxSourceBytes {
			return nil, fmt.Errorf("gac source %d bytes exceeds the %d-byte limit", len(req.GAC), s.opts.MaxSourceBytes)
		}
		im, err = gac.Compile(req.GAC)
		if err != nil {
			return nil, fmt.Errorf("gac: %w", err)
		}
	} else {
		raw, derr := base64.StdEncoding.DecodeString(req.ImageB64)
		if derr != nil {
			return nil, fmt.Errorf("image_b64: %w", derr)
		}
		if len(raw) > s.opts.MaxSourceBytes {
			return nil, fmt.Errorf("image %d bytes exceeds the %d-byte limit", len(raw), s.opts.MaxSourceBytes)
		}
		im, err = asm.ReadImage(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("image: %w", err)
		}
	}
	threads := req.Threads
	if threads == 0 {
		threads = 1
	}
	if threads < 1 || threads > s.opts.MaxThreadsPerJob {
		return nil, fmt.Errorf("threads %d out of range [1,%d]", threads, s.opts.MaxThreadsPerJob)
	}
	if len(req.Tenant) > 64 {
		return nil, fmt.Errorf("tenant %q longer than 64 bytes", req.Tenant[:64]+"…")
	}
	if len(req.Fault) > 0 && !s.opts.AllowFaultInjection {
		return nil, fmt.Errorf("fault injection is not enabled on this server")
	}
	var inj *faultinject.Injector
	if len(req.Fault) > 0 {
		rules := make([]faultinject.Rule, 0, len(req.Fault))
		for i, fr := range req.Fault {
			r, field, rerr := fr.rule()
			if rerr != nil {
				// Name the offending field so a client can fix its request
				// without grepping server source: fault[2].action, not just
				// "unknown action".
				if field != "" {
					return nil, fmt.Errorf("fault[%d].%s: %w", i, field, rerr)
				}
				return nil, fmt.Errorf("fault[%d]: %w", i, rerr)
			}
			rules = append(rules, r)
		}
		inj = faultinject.New(rules...)
	}

	cfg := engine.DefaultConfig(req.Scheme)
	cfg.MemBytes = req.Config.MemBytes
	if req.Config.HashBits != 0 {
		cfg.HashBits = req.Config.HashBits
	}
	cfg.MaxGuestInstrs = req.Config.MaxGuestInstrs
	cfg.FuseAtomics = req.Config.FuseAtomics
	cfg.CheckpointEvery = req.Config.CheckpointEvery
	if req.Config.RecoveryAttempts != 0 {
		cfg.RecoveryAttempts = req.Config.RecoveryAttempts
	}
	cfg.VirtualDeadline = req.Config.VirtualDeadline
	if cfg.VirtualDeadline == 0 {
		cfg.VirtualDeadline = s.opts.DefaultVirtualDeadline
	}
	if req.Config.WatchdogSCFails != 0 {
		cfg.WatchdogSCFails = req.Config.WatchdogSCFails
	}
	cfg.ChainBudget = req.Config.ChainBudget
	cfg.Tiered = req.Config.Tiered
	if req.Config.HotThreshold != 0 {
		cfg.HotThreshold = req.Config.HotThreshold
	}
	if cfg.MaxGuestInstrs == 0 || cfg.MaxGuestInstrs > s.opts.MaxGuestInstrs {
		cfg.MaxGuestInstrs = s.opts.MaxGuestInstrs
	}
	cfg.FaultInjector = inj
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	wall := s.opts.DefaultWallDeadline
	if req.DeadlineMS > 0 {
		wall = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if wall > s.opts.MaxWallDeadline {
		wall = s.opts.MaxWallDeadline
	}
	base, size := engine.ImageSpan(im)
	return &job{
		im:        im,
		cfg:       cfg,
		threads:   threads,
		arg:       req.Arg,
		wallcap:   wall,
		imageHash: engine.ImageKey(im),
		imageBase: base,
		imageSize: size,
		status: JobStatus{
			State:           StateQueued,
			Tenant:          req.Tenant,
			SchemeRequested: req.Scheme,
			ExitCode:        -1,
		},
	}, nil
}

// snapshot returns the job's wire status; a running job's counters come
// from a live quiesced machine read.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	m := j.machine
	st := j.status
	j.mu.Unlock()
	if m != nil && st.State == StateRunning {
		agg := m.AggregateStats()
		st.VirtualTime = m.VirtualTime()
		fillStats(&st, agg)
	}
	return st
}

func fillStats(st *JobStatus, agg stats.CPU) {
	st.GuestInstrs = agg.GuestInstrs
	st.SCs = agg.SCs
	st.SCFails = agg.SCFails
	st.Checkpoints = agg.Checkpoints
	st.Restores = agg.RecoveryRestores
	st.Fallbacks = agg.SchemeFallbacks
	st.Watchdogs = agg.WatchdogTrips
}
