package server

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"atomemu/internal/checkpoint"
)

// This file is the worker's half of router failover: checkpoint hand-off.
// GET /jobs/{id}/checkpoint exports a running job's latest in-memory
// checkpoint as an ACKP image, which the router caches; when this worker
// later dies mid-job, the router ships that image to a surviving worker
// via POST /jobs/{id}/resume, which admits a job that resumes from the
// snapshot instead of starting from the program entry. The resume budget
// is the restart-resume budget (Options.MaxRestartResumes): a job that has
// already burned it runs again from scratch — progress is lost, but the
// exactly-once contract (one id, one result per idempotency key) holds.

// ResumeRequest is the wire form of POST /jobs/{id}/resume.
type ResumeRequest struct {
	// Request is the job's original submission; admission policy applies to
	// it exactly as it would to POST /jobs (same validation, same
	// idempotency).
	Request JobRequest `json:"request"`
	// SnapshotB64 is a base64 ACKP checkpoint image to resume from. Empty
	// means "re-dispatch from scratch" (the shipper had no checkpoint).
	SnapshotB64 string `json:"snapshot_b64,omitempty"`
	// Resumes is how many resume attempts this job has consumed, including
	// this one. Beyond MaxRestartResumes the snapshot is ignored and the
	// job runs from scratch, mirroring restart recovery.
	Resumes int `json:"resumes,omitempty"`
}

// SubmitResume admits a job that continues from a shipped checkpoint.
// alias names the job on the shipping side (the router's job id); it backs
// the idempotency key when the request carries none, so a re-shipped
// resume cannot double-run. The returned bool reports whether the snapshot
// was actually adopted (false: from scratch — over budget or no snapshot).
func (s *Server) SubmitResume(alias string, rr ResumeRequest) (string, bool, error) {
	var snap *checkpoint.Snapshot
	if rr.SnapshotB64 != "" {
		raw, err := base64.StdEncoding.DecodeString(rr.SnapshotB64)
		if err != nil {
			return "", false, &SubmitError{Status: http.StatusBadRequest, Msg: "snapshot_b64: " + err.Error()}
		}
		snap, err = checkpoint.DecodeBytes(raw)
		if err != nil {
			return "", false, &SubmitError{Status: http.StatusBadRequest, Msg: "snapshot: " + err.Error()}
		}
	}
	req := rr.Request
	if req.IdempotencyKey == "" {
		if alias == "" {
			return "", false, &SubmitError{Status: http.StatusBadRequest, Msg: "resume needs a job id or an idempotency key"}
		}
		req.IdempotencyKey = "resume:" + alias
	}
	j, err := s.decode(req)
	if err != nil {
		return "", false, &SubmitError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	j.resumes = rr.Resumes
	j.status.RestartResumes = rr.Resumes
	resumed := false
	if snap != nil && (s.opts.MaxRestartResumes < 0 || rr.Resumes <= s.opts.MaxRestartResumes) {
		j.resumeSnap = snap
		resumed = true
	}
	id, err := s.admit(j, req)
	if err != nil {
		return "", false, err
	}
	return id, resumed, nil
}

// handleCheckpoint serves GET /jobs/{id}/checkpoint: the running machine's
// latest checkpoint as an ACKP image, virtual time and consumed resume
// budget in headers. 404 when the job is unknown, not running, or has not
// checkpointed yet — to a router those all mean "nothing to ship".
func (s *Server) handleCheckpoint(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		s.httpError(w, http.StatusNotFound, "no such job "+id)
		return
	}
	j.mu.Lock()
	m := j.machine
	resumes := j.resumes
	j.mu.Unlock()
	if m == nil {
		s.httpError(w, http.StatusNotFound, "job "+id+" is not running")
		return
	}
	snap := m.LatestCheckpoint()
	if snap == nil {
		s.httpError(w, http.StatusNotFound, "job "+id+" has no checkpoint yet")
		return
	}
	data, err := checkpoint.EncodeBytes(snap)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, fmt.Sprintf("encoding checkpoint: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Atomemu-Virtual-Time", strconv.FormatUint(snap.VirtualTime, 10))
	w.Header().Set("X-Atomemu-Resumes", strconv.Itoa(resumes))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if _, err := w.Write(data); err != nil {
		s.opts.Logger.Printf("server: writing checkpoint for %s: %v", id, err)
	}
}

// handleResume serves POST /jobs/{id}/resume.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request, id string) {
	var rr ResumeRequest
	if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	jid, resumed, err := s.SubmitResume(id, rr)
	if err != nil {
		se, ok := err.(*SubmitError)
		if !ok {
			se = &SubmitError{Status: http.StatusInternalServerError, Msg: err.Error()}
		}
		if se.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
		}
		s.httpError(w, se.Status, se.Msg)
		return
	}
	state := string(StateQueued)
	if st, ok := s.Status(jid); ok {
		state = string(st.State)
	}
	s.writeJSON(w, http.StatusAccepted, map[string]any{
		"id": jid, "state": state, "resumed": resumed,
	})
}
