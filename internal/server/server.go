// Package server is the multi-tenant emulation job service behind
// cmd/atomemud: an HTTP/JSON API that accepts guest programs, runs each in
// an isolated engine.Machine via RunContext on a bounded worker pool, and
// serves structured results.
//
// Robustness is the design center, built from the engine's own resilience
// primitives:
//
//   - Admission control: a bounded queue; submissions beyond it are shed
//     with 429 instead of queuing without bound, and drains are refused
//     with 503 before the queue is consulted.
//   - Per-job isolation: every job gets its own Machine — a misbehaving
//     guest can exhaust only its own budgets. Worker goroutines contain
//     panics (the engine already contains vCPU panics), so no job input
//     can kill the daemon.
//   - Deadlines: each job runs under a wall-clock context deadline and a
//     virtual-time deadline; both are capped by server policy.
//   - Per-scheme circuit breaker: repeated scheme-implicating failures
//     (recovery exhausted, watchdog trips, emulation errors) open the
//     scheme's breaker, demoting new jobs to portable HST until a
//     half-open probe passes — the service-level twin of the engine's
//     per-run scheme demotion.
//   - Graceful drain: Drain stops admission, lets queued and running jobs
//     reach a terminal state (cancelling stragglers after a grace period;
//     rollback-capable jobs checkpoint-abort via context cancellation),
//     then stops the workers.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atomemu/internal/durable"
	"atomemu/internal/engine"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
	"atomemu/internal/tbstore"
)

// Options is the server policy. Zero values take the defaults below.
type Options struct {
	// Workers bounds concurrently running jobs (default 4).
	Workers int
	// QueueDepth bounds jobs waiting to run; submissions past it are shed
	// with 429 (default 16).
	QueueDepth int
	// DefaultWallDeadline and MaxWallDeadline budget a job's wall-clock
	// run time (defaults 30s / 2m).
	DefaultWallDeadline time.Duration
	MaxWallDeadline     time.Duration
	// DefaultVirtualDeadline is applied when a job sets none (default
	// 2e9 cycles; jobs may set a lower or higher one, engine-validated).
	DefaultVirtualDeadline uint64
	// MaxGuestInstrs caps any job's instruction budget (default 4e9).
	MaxGuestInstrs uint64
	// MaxThreadsPerJob bounds a job's worker-thread request (default 64).
	MaxThreadsPerJob int
	// MaxSourceBytes bounds GAC source / decoded image size (default 1MB).
	MaxSourceBytes int
	// BreakerThreshold is how many consecutive scheme-implicating failures
	// open a scheme's breaker; 0 disables the breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a breaker stays open before a half-open
	// probe (default 30s).
	BreakerCooldown time.Duration
	// DrainGrace is how long Drain waits for in-flight jobs before
	// cancelling them (default 10s).
	DrainGrace time.Duration
	// AllowFaultInjection accepts jobs carrying fault-injection rules —
	// for soak and CI harnesses, never production tenants.
	AllowFaultInjection bool
	// DataDir enables durability: accepted jobs are journaled write-ahead
	// under <DataDir>/journal, running jobs spill checkpoints under
	// <DataDir>/ckpt, and New replays both so accepted work survives a
	// crash or restart. Empty keeps the server purely in-memory.
	DataDir string
	// Fsync is the journal sync policy: "always", "batch" (default) or
	// "never". See durable.SyncPolicy for the trade-offs.
	Fsync string
	// MaxRestartResumes bounds how many times one job may resume from its
	// on-disk checkpoint across daemon restarts before recovery falls back
	// to requeueing it from scratch. Default 3; negative means unbounded.
	// The same budget bounds resumes shipped in over POST /jobs/{id}/resume
	// (router failover): past it, the snapshot is dropped and the job runs
	// from scratch.
	MaxRestartResumes int
	// SharedTBCacheBlocks enables the process-wide content-addressed
	// translation store (internal/tbstore), capped at this many cached
	// blocks: jobs for the same image under the same configuration share
	// translations instead of each re-paying decode+translate+optimize.
	// 0 disables it (every job keeps a private cache, the historical
	// behavior). Fault-injected jobs never attach.
	SharedTBCacheBlocks int
	// WarmPoolSize enables checkpoint-templated warm starts: after a job
	// completes, its first checkpoint becomes a fork template, and later
	// jobs for the same image and configuration resume from it instead of
	// re-running the prologue. Bounds the live template count (LRU);
	// 0 disables warm starts.
	WarmPoolSize int
	// WarmCheckpointEvery, with warm pools on, is the checkpoint cadence
	// given to jobs that request none, so a template can be captured for
	// them. Capture is uncharged in the virtual-time model, so this never
	// perturbs a job's cycles or output. 0 leaves cadence-less jobs
	// templateless.
	WarmCheckpointEvery uint64
	// BackgroundReplay makes New return before the journal replay finishes:
	// the HTTP surface comes up immediately, /readyz answers 503 (with
	// Retry-After) until recovery completes, and submissions are refused
	// with 503 in the window. Off, New blocks until recovery is done — the
	// historical behavior, which tests and embedders rely on.
	BackgroundReplay bool
	// Logger receives server-side diagnostics (failed response encodes).
	// Defaults to log.Default().
	Logger *log.Logger

	// testReplayHold, when set by a test, is received from after the journal
	// has been read but before recovered jobs are requeued — pinning the
	// server in its recovering state so the 503 window is observable.
	testReplayHold chan struct{}
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.DefaultWallDeadline <= 0 {
		o.DefaultWallDeadline = 30 * time.Second
	}
	if o.MaxWallDeadline <= 0 {
		o.MaxWallDeadline = 2 * time.Minute
	}
	if o.DefaultVirtualDeadline == 0 {
		o.DefaultVirtualDeadline = 2_000_000_000
	}
	if o.MaxGuestInstrs == 0 {
		o.MaxGuestInstrs = 4_000_000_000
	}
	if o.MaxThreadsPerJob <= 0 {
		o.MaxThreadsPerJob = 64
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 1 << 20
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 10 * time.Second
	}
	if o.MaxRestartResumes == 0 {
		o.MaxRestartResumes = 3
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// Metrics are the service counters, exposed on /healthz and /statz.
type Metrics struct {
	Accepted  uint64 `json:"accepted"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Recovered counts jobs that finished after at least one rollback
	// restore; Demoted counts jobs the breaker routed to HST.
	Recovered    uint64 `json:"recovered"`
	Demoted      uint64 `json:"demoted"`
	BreakerTrips uint64 `json:"breaker_trips"`
	Panics       uint64 `json:"panics"`

	// Durability counters, all zero on servers without a DataDir.
	// Journal*: this process's write-ahead journal activity, plus what the
	// startup replay found on disk. CkptSpill*: checkpoint spills to disk.
	// Restart*: how jobs recovered at the last startup.
	JournalAppends     uint64 `json:"journal_appends,omitempty"`
	JournalFsyncs      uint64 `json:"journal_fsyncs,omitempty"`
	JournalCompactions uint64 `json:"journal_compactions,omitempty"`
	JournalSegments    uint64 `json:"journal_segments,omitempty"`
	JournalErrors      uint64 `json:"journal_errors,omitempty"`
	JournalReplayed    uint64 `json:"journal_replayed,omitempty"`
	JournalCorrupt     uint64 `json:"journal_corrupt_records,omitempty"`
	CkptSpills         uint64 `json:"ckpt_spills,omitempty"`
	CkptSpillBytes     uint64 `json:"ckpt_spill_bytes,omitempty"`
	CkptSpillErrors    uint64 `json:"ckpt_spill_errors,omitempty"`
	CkptTempsSwept     uint64 `json:"ckpt_temps_swept,omitempty"`
	RestartResumed     uint64 `json:"restart_resumed,omitempty"`
	RestartRequeued    uint64 `json:"restart_requeued,omitempty"`
	RestartTerminal    uint64 `json:"restart_terminal,omitempty"`

	// Warm-start counters, all zero unless SharedTBCacheBlocks /
	// WarmPoolSize enabled the respective layer. TBStore*: the process-wide
	// translation store. Warm*: checkpoint-templated forks.
	TBStoreHits          uint64 `json:"tbstore_hits,omitempty"`
	TBStoreMisses        uint64 `json:"tbstore_misses,omitempty"`
	TBStorePublishes     uint64 `json:"tbstore_publishes,omitempty"`
	TBStoreEvictions     uint64 `json:"tbstore_evictions,omitempty"`
	TBStoreInvalidations uint64 `json:"tbstore_invalidations,omitempty"`
	TBStoreBlocks        int    `json:"tbstore_blocks,omitempty"`
	TBStoreSegments      int    `json:"tbstore_segments,omitempty"`
	WarmForks            uint64 `json:"warm_forks,omitempty"`
	WarmPublishes        uint64 `json:"warm_publishes,omitempty"`
	WarmFallbacks        uint64 `json:"warm_fallbacks,omitempty"`
	WarmEvictions        uint64 `json:"warm_evictions,omitempty"`
	WarmTemplates        int    `json:"warm_templates,omitempty"`
}

// Server is the job service. Create with New, mount Handler, stop with
// Drain.
type Server struct {
	opts     Options
	queue    chan *job
	breakers *breakerSet

	// admitMu serializes admission against the drain transition: Submit
	// holds it shared while checking draining and enqueuing, so once Drain
	// (exclusive) has set the flag, nothing more enters the queue.
	admitMu   sync.RWMutex
	draining  atomic.Bool
	drainOnce sync.Once     // Drain is idempotent: only the first call transitions
	drainCh   chan struct{} // closed at drain: workers finish the queue and exit
	killed    atomic.Bool   // drain grace expired: every job, including ones not yet started, is canceled

	workerWG sync.WaitGroup
	jobWG    sync.WaitGroup // one per accepted job, done at terminal state

	// recovering is true from New until journal replay has requeued every
	// recovered job (always false without BackgroundReplay, where New blocks
	// through recovery). recoveryDone closes when recovery ends, success or
	// failure; recoverErr (under mu) holds a fatal replay error — the server
	// then refuses admission forever and reports the error on /readyz.
	recovering   atomic.Bool
	recoveryDone chan struct{}
	recoverErr   error

	// finishRing holds the last finish times, the worker pool's measured
	// drain rate; 429 sheds derive their Retry-After from it.
	finishMu   sync.Mutex
	finishRing []time.Time
	finishNext int

	mu     sync.Mutex
	jobs   map[string]*job
	nextID uint64
	// idemp maps an idempotency key to the job id it admitted, so a retried
	// POST (a client that never saw its 202, or one replaying across a
	// daemon restart) returns the same job instead of running it twice.
	// shedByKey/shedByID remember keyed submissions shed at admission, so
	// GET /jobs/{id} can answer "shed", distinctly from "never seen".
	idemp     map[string]string
	shedByKey map[string]string
	shedByID  map[string]string

	// dur is the durability layer; nil without Options.DataDir.
	dur *durability

	// tbstore is the process-wide content-addressed translation store and
	// warm the checkpoint-template pool; both nil unless enabled in Options.
	tbstore *tbstore.Store[*engine.TB]
	warm    *warmPool

	accepted, shed, completed, failed, canceled atomic.Uint64
	recovered, demoted, panics                  atomic.Uint64

	// Engine observability, fed by finish: counters from every finished
	// machine accumulate into engineAgg, and per-scheme latency histograms
	// record each job's wall and virtual duration. aggMu guards all three
	// (histogram observation itself is lock-free; the maps are not).
	aggMu     sync.Mutex
	engineAgg stats.CPU
	wallHist  map[string]*obs.Histogram
	virtHist  map[string]*obs.Histogram
}

// New builds the server and starts its worker pool. With a DataDir it
// replays the journal — re-registering terminal jobs, requeueing accepted
// ones and resuming started ones from their spilled checkpoints — before
// admitting anything new. Journal damage (torn tails, corrupt records)
// never fails startup; only real I/O errors do. With BackgroundReplay the
// replay runs behind a 503 window instead of blocking New; a replay I/O
// error then disables admission permanently (reported on /readyz) rather
// than failing construction.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:         opts,
		breakers:     newBreakerSet(opts.BreakerThreshold, opts.BreakerCooldown),
		drainCh:      make(chan struct{}),
		recoveryDone: make(chan struct{}),
		jobs:         make(map[string]*job),
		idemp:        make(map[string]string),
		shedByKey:    make(map[string]string),
		shedByID:     make(map[string]string),
		wallHist:     make(map[string]*obs.Histogram),
		virtHist:     make(map[string]*obs.Histogram),
		finishRing:   make([]time.Time, 32),
		tbstore:      tbstore.New[*engine.TB](opts.SharedTBCacheBlocks),
		warm:         newWarmPool(opts.WarmPoolSize),
	}
	if opts.DataDir == "" {
		s.startPool(nil)
		close(s.recoveryDone)
		return s, nil
	}
	if !opts.BackgroundReplay {
		var recovered []*job
		if err := s.initDurability(&recovered); err != nil {
			return nil, fmt.Errorf("server: durability init: %w", err)
		}
		s.startPool(recovered)
		close(s.recoveryDone)
		return s, nil
	}
	s.recovering.Store(true)
	go func() {
		defer close(s.recoveryDone)
		var recovered []*job
		err := s.initDurability(&recovered)
		if hold := opts.testReplayHold; hold != nil {
			<-hold
		}
		if err != nil {
			// The journal is unreadable for real (I/O, not damage): admitting
			// anything could double-run recovered work, so the server stays
			// not-ready forever and says why.
			s.mu.Lock()
			s.recoverErr = err
			s.mu.Unlock()
			s.opts.Logger.Printf("server: durability init failed, admission disabled: %v", err)
			return
		}
		s.startPool(recovered)
		s.recovering.Store(false)
	}()
	return s, nil
}

// startPool creates the queue, requeues recovered jobs and starts the
// workers. Recovered jobs must all fit the queue, whatever its configured
// depth: shedding previously accepted work at restart would break the
// durability contract.
func (s *Server) startPool(recovered []*job) {
	qcap := s.opts.QueueDepth
	if len(recovered) > qcap {
		qcap = len(recovered)
	}
	q := make(chan *job, qcap)
	for _, j := range recovered {
		q <- j
		s.jobWG.Add(1)
	}
	s.mu.Lock()
	s.queue = q
	s.mu.Unlock()
	for i := 0; i < s.opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
}

// jobQueue reads the queue under the lock: with BackgroundReplay the queue
// is created when recovery finishes, so observers (readyz, /metrics) that
// run inside the window must not read the field bare. nil means the pool
// is not up yet.
func (s *Server) jobQueue() chan *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue
}

// WaitReady blocks until recovery has finished (immediately on servers
// without BackgroundReplay) or ctx expires. A nil return does not mean the
// server is admitting — recovery may have failed or a drain begun; it
// means the startup transition is over and Metrics/readyz are final.
func (s *Server) WaitReady(ctx context.Context) error {
	select {
	case <-s.recoveryDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// notReady reports why the server cannot admit jobs right now ("" = it
// can, drain aside) plus a Retry-After hint in seconds (0 = none: the
// condition is permanent).
func (s *Server) notReady() (string, int) {
	if s.recovering.Load() {
		s.mu.Lock()
		err := s.recoverErr
		s.mu.Unlock()
		if err != nil {
			return "recovery failed: " + err.Error(), 0
		}
		return "recovering: journal replay in progress", 1
	}
	if s.draining.Load() {
		return "draining", 0
	}
	return "", 0
}

// SubmitError is a submission failure with its HTTP status: 400 for bad
// requests, 429 for shed load, 503 while draining or recovering. ID is set
// on a keyed shed: the id under which GET /jobs/{id} will answer "shed".
// RetryAfter, when nonzero, is the Retry-After hint in seconds — for 429s
// it is derived from the current queue depth and the worker pool's
// measured drain rate, so clients back off proportionally to the actual
// backlog instead of hammering a full queue.
type SubmitError struct {
	Status     int
	Msg        string
	ID         string
	RetryAfter int
}

func (e *SubmitError) Error() string { return e.Msg }

// Submit admits a job: decode and validate (the expensive part, outside any
// lock), then atomically check-drain-and-enqueue. The returned job is
// already visible to Status. A request whose idempotency key was already
// accepted returns the original job's id without running anything new.
func (s *Server) Submit(req JobRequest) (string, error) {
	j, err := s.decode(req)
	if err != nil {
		return "", &SubmitError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	return s.admit(j, req)
}

// admit is the shared admission tail of Submit and SubmitResume: readiness
// and drain gates, journal bookkeeping, idempotency, and the
// enqueue-or-shed race.
func (s *Server) admit(j *job, req JobRequest) (string, error) {
	if reason, retry := s.notReady(); reason != "" {
		return "", &SubmitError{Status: http.StatusServiceUnavailable, Msg: reason, RetryAfter: retry}
	}
	j.key = req.IdempotencyKey
	if j.key != "" || s.dur != nil {
		raw, merr := json.Marshal(req)
		if merr != nil {
			return "", &SubmitError{Status: http.StatusBadRequest, Msg: merr.Error()}
		}
		j.rawReq = raw
	}
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return "", &SubmitError{Status: http.StatusServiceUnavailable, Msg: "draining"}
	}
	s.mu.Lock()
	if j.key != "" {
		if id, ok := s.idemp[j.key]; ok {
			s.mu.Unlock()
			return id, nil
		}
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	j.status.ID = j.id
	j.status.EnqueuedAt = time.Now()
	queue := s.queue
	s.mu.Unlock()
	select {
	case queue <- j:
	default:
		s.shed.Add(1)
		retry := s.retryAfterSecs()
		if j.key == "" {
			return "", &SubmitError{Status: http.StatusTooManyRequests, Msg: "queue full", RetryAfter: retry}
		}
		// A keyed shed is remembered (and journaled), so a client retrying
		// the key later gets a fresh attempt, and a GET on this id gets a
		// distinct "shed" answer rather than "never seen".
		s.mu.Lock()
		s.shedByKey[j.key] = j.id
		s.shedByID[j.id] = j.key
		s.mu.Unlock()
		s.journalAppend(durable.Record{Type: durable.TypeShed, Job: j.id, Key: j.key})
		return "", &SubmitError{Status: http.StatusTooManyRequests, Msg: "queue full", ID: j.id, RetryAfter: retry}
	}
	// Registered only after winning a queue slot, so an unkeyed shed job
	// leaves no record behind.
	s.mu.Lock()
	s.jobs[j.id] = j
	if j.key != "" {
		s.idemp[j.key] = j.id
		if old := s.shedByKey[j.key]; old != "" {
			delete(s.shedByKey, j.key)
			delete(s.shedByID, old)
		}
	}
	s.mu.Unlock()
	s.accepted.Add(1)
	s.jobWG.Add(1)
	s.journalAppend(durable.Record{Type: durable.TypeSubmitted, Job: j.id, Key: j.key, Request: j.rawReq})
	return j.id, nil
}

// Status returns a job's current status snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Jobs returns a snapshot of every known job.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(all))
	for _, j := range all {
		out = append(out, j.snapshot())
	}
	return out
}

// Metrics returns the service counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Accepted:     s.accepted.Load(),
		Shed:         s.shed.Load(),
		Completed:    s.completed.Load(),
		Failed:       s.failed.Load(),
		Canceled:     s.canceled.Load(),
		Recovered:    s.recovered.Load(),
		Demoted:      s.demoted.Load(),
		BreakerTrips: s.breakers.tripCount(),
		Panics:       s.panics.Load(),
	}
	s.mu.Lock()
	d := s.dur
	s.mu.Unlock()
	if d != nil {
		js := d.jour.Stats()
		m.JournalAppends = js.Appends
		m.JournalFsyncs = js.Fsyncs
		m.JournalCompactions = js.Compactions
		m.JournalSegments = uint64(js.Segments)
		m.JournalErrors = d.journalErrors.Load()
		m.JournalReplayed = uint64(d.replay.Records)
		m.JournalCorrupt = uint64(d.replay.CorruptRecords)
		m.CkptSpills = d.spills.Load()
		m.CkptSpillBytes = d.spillBytes.Load()
		m.CkptSpillErrors = d.spillErrors.Load()
		m.CkptTempsSwept = d.ckptTempsSwept.Load()
		m.RestartResumed = d.restartResumed.Load()
		m.RestartRequeued = d.restartRequeued.Load()
		m.RestartTerminal = d.restartTerminal.Load()
	}
	if s.tbstore != nil {
		ts := s.tbstore.Stats()
		m.TBStoreHits = ts.Hits
		m.TBStoreMisses = ts.Misses
		m.TBStorePublishes = ts.Publishes
		m.TBStoreEvictions = ts.Evictions
		m.TBStoreInvalidations = ts.Invalidations
		m.TBStoreBlocks = ts.Blocks
		m.TBStoreSegments = ts.Segments
	}
	if s.warm != nil {
		m.WarmForks = s.warm.forks.Load()
		m.WarmPublishes = s.warm.publishes.Load()
		m.WarmFallbacks = s.warm.fallbacks.Load()
		m.WarmEvictions = s.warm.evictions.Load()
		m.WarmTemplates = s.warm.size()
	}
	return m
}

// Breakers returns the per-scheme breaker states.
func (s *Server) Breakers() []BreakerStatus { return s.breakers.statuses() }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: refuse new submissions, let queued and
// running jobs reach a terminal state, cancel stragglers after DrainGrace
// (their machines stop at the next block boundary; rollback-capable jobs
// abort from their last checkpoint), and stop the workers. Returns nil when
// every accepted job ended terminal; ctx bounds the whole wait.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		s.draining.Store(true)
		s.admitMu.Unlock()
		close(s.drainCh)
	})

	// A background replay still in flight owns the journal and the worker
	// pool's startup; the drain must not race it.
	select {
	case <-s.recoveryDone:
	case <-ctx.Done():
		return fmt.Errorf("server: drain aborted during recovery: %w", ctx.Err())
	}

	jobsDone := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(jobsDone)
	}()
	grace := time.NewTimer(s.opts.DrainGrace)
	defer grace.Stop()
	select {
	case <-jobsDone:
	case <-grace.C:
		s.cancelRunning()
		select {
		case <-jobsDone:
		case <-ctx.Done():
			return fmt.Errorf("server: drain timed out with jobs still live: %w", ctx.Err())
		}
	case <-ctx.Done():
		s.cancelRunning()
		return fmt.Errorf("server: drain aborted: %w", ctx.Err())
	}
	s.workerWG.Wait()
	s.closeJournal()
	return nil
}

// cancelRunning cancels every live job. The killed flag is set first so a
// queued job popped after this sweep self-cancels on startup (run checks it
// right after publishing its cancel func) — otherwise a straggler could
// still burn its full wall-clock budget inside the drain window.
func (s *Server) cancelRunning() {
	s.killed.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
}

// worker runs queued jobs until drained: after drainCh closes it keeps
// pulling until the queue is empty, so every accepted job still runs.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.run(j)
		case <-s.drainCh:
			for {
				select {
				case j := <-s.queue:
					s.run(j)
				default:
					return
				}
			}
		}
	}
}

// run executes one job in an isolated machine. The deferred recover is the
// service's outermost containment: the engine already contains vCPU panics,
// so this guards host-side setup — no job input may kill the daemon.
func (s *Server) run(j *job) {
	defer s.jobWG.Done()
	var sp *spiller
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			if sp != nil {
				sp.stop()
				sp = nil
			}
			s.finish(j, engine.StopError, fmt.Errorf("server: job panicked: %v", r), nil)
		}
	}()

	scheme, demoted, probe := s.breakers.route(j.status.SchemeRequested)
	if demoted {
		s.demoted.Add(1)
	}
	cfg := j.cfg
	cfg.Scheme = scheme
	// Warm-start plumbing. Fault-injected jobs never share: an injected
	// fault could poison a translation or a template other tenants adopt.
	warmable := s.warm != nil && cfg.FaultInjector == nil
	if warmable && cfg.CheckpointEvery == 0 && s.opts.WarmCheckpointEvery > 0 {
		cfg.CheckpointEvery = s.opts.WarmCheckpointEvery
	}
	if s.tbstore != nil && cfg.FaultInjector == nil {
		cfg.SharedTBStore = s.tbstore
	}
	if s.dur != nil && cfg.CheckpointEvery > 0 {
		sp = s.newSpiller(j.id)
		cfg.CheckpointSink = sp.sink
	}
	var m *engine.Machine
	var err error
	var tc *templateCapture
	var warmKey string
	warmForked := false
	if snap := j.resumeSnap; snap != nil {
		// Restart recovery: rebuild the machine from the spilled cut instead
		// of loading the image from scratch. One shot — drop the reference so
		// the decoded snapshot isn't pinned for the job's lifetime. The
		// journal records no store-watch state for the cut, so the machine
		// cannot prove its image span pristine: run with a private cache.
		j.resumeSnap = nil
		cfg.SharedTBStore = nil
		m, err = engine.ResumeFromSnapshot(cfg, snap)
	} else {
		if warmable {
			warmKey = warmJobKey(j, cfg)
			if tmpl := s.warm.lookup(warmKey); tmpl != nil {
				fcfg := cfg
				if fcfg.SharedTBStore != nil && tmpl.seed != nil {
					// The fork's memory starts at the template cut, not a
					// pristine image: seed the store watch with the
					// producer's per-page counts so pages mutated before
					// the cut stay unshareable here too.
					fcfg.SharedTBImage = tmpl.image
					fcfg.SharedTBBase = tmpl.base
					fcfg.SharedTBSize = tmpl.size
					fcfg.SharedTBSeedStores = tmpl.seed
				} else {
					fcfg.SharedTBStore = nil
				}
				if fm, ferr := engine.ResumeFromSnapshot(fcfg, tmpl.snap); ferr == nil {
					m = fm
					warmForked = true
					s.warm.forks.Add(1)
				} else {
					// A bad template must never fail the job: fall back to a
					// cold start.
					s.warm.fallbacks.Add(1)
					s.opts.Logger.Printf("server: warm fork for %s failed, starting cold: %v", j.id, ferr)
				}
			}
		}
		if m == nil {
			if warmable && cfg.CheckpointEvery > 0 {
				// Cold eligible run: steal its first checkpoint as the fork
				// template for this key, publishing only if it succeeds.
				tc = &templateCapture{next: cfg.CheckpointSink}
				cfg.CheckpointSink = tc.sink
			}
			m, err = engine.NewMachine(cfg)
			if err == nil && tc != nil {
				tc.m.Store(m)
			}
			if err == nil {
				err = m.LoadImage(j.im)
			}
			for i := 0; i < j.threads && err == nil; i++ {
				_, err = m.SpawnThread(j.im.Entry, j.arg)
			}
		}
	}
	if err != nil {
		s.breakers.report(scheme, probe, false)
		if sp != nil {
			sp.stop()
			sp = nil
		}
		s.finish(j, engine.StopError, err, nil)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), j.wallcap)
	defer cancel()
	j.mu.Lock()
	j.status.State = StateRunning
	j.status.StartedAt = time.Now()
	j.status.SchemeEffective = scheme
	j.status.Demoted = demoted
	j.status.WarmForked = warmForked
	j.machine = m
	j.cancel = cancel
	j.mu.Unlock()
	s.journalAppend(durable.Record{Type: durable.TypeStarted, Job: j.id, Resumes: j.resumes})
	if s.killed.Load() {
		cancel()
	}

	runErr := m.RunContext(ctx)
	s.breakers.report(scheme, probe, schemeTripworthy(runErr))
	if sp != nil {
		// The machine has stopped, so no further sink calls: flush the last
		// spill before finish journals the terminal record and deletes it.
		sp.stop()
		sp = nil
	}
	if tc != nil && runErr == nil {
		// Only a successful run publishes its template: a failed or canceled
		// prologue must never become the fleet's warm start.
		s.warm.publish(warmKey, tc.template(j))
	}
	s.finish(j, engine.ClassifyStop(runErr), runErr, m)
}

// finish moves a job to its terminal state and publishes the final result.
func (s *Server) finish(j *job, class engine.StopClass, err error, m *engine.Machine) {
	st := StateFailed
	switch {
	case err == nil:
		st = StateDone
		s.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st = StateCanceled
		s.canceled.Add(1)
	default:
		s.failed.Add(1)
	}
	j.mu.Lock()
	j.status.State = st
	j.status.FinishedAt = time.Now()
	j.status.Class = class.String()
	j.status.ExitCode = class.ExitCode()
	if err != nil {
		j.status.Error = err.Error()
	}
	if m != nil {
		agg := m.AggregateStats()
		fillStats(&j.status, agg)
		j.status.VirtualTime = m.VirtualTime()
		j.status.Output = m.Output()
		// Mid-run demotion (rollback recovery) also counts as demoted.
		if eff := m.Scheme().Name(); eff != j.status.SchemeEffective {
			j.status.SchemeEffective = eff
			j.status.Demoted = true
		}
		if agg.RecoveryRestores > 0 && err == nil {
			s.recovered.Add(1)
		}
		s.observeJob(j.status.SchemeEffective, &agg,
			j.status.FinishedAt.Sub(j.status.StartedAt), j.status.VirtualTime)
	}
	j.machine = nil
	j.cancel = nil
	final := j.status
	j.mu.Unlock()
	s.noteFinish(final.FinishedAt)
	// Journal the terminal state outside the job lock (an append can rotate
	// into compaction, which re-reads every job's status).
	s.journalFinish(j, final)
}

// noteFinish records one terminal transition in the drain-rate ring.
func (s *Server) noteFinish(t time.Time) {
	s.finishMu.Lock()
	s.finishRing[s.finishNext%len(s.finishRing)] = t
	s.finishNext++
	s.finishMu.Unlock()
}

// drainRate is the worker pool's measured throughput in jobs per second:
// the finishes remembered in the ring over the span from the oldest of
// them to now. Using "now" (not the newest finish) as the right edge makes
// the estimate decay while nothing finishes — a stalled pool reports an
// ever-lower rate instead of its last good one. 0 means no evidence yet.
func (s *Server) drainRate() float64 {
	s.finishMu.Lock()
	var oldest time.Time
	n := 0
	for _, t := range s.finishRing {
		if t.IsZero() {
			continue
		}
		n++
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	s.finishMu.Unlock()
	if n == 0 {
		return 0
	}
	span := time.Since(oldest)
	if span < 50*time.Millisecond {
		span = 50 * time.Millisecond
	}
	return float64(n) / span.Seconds()
}

// retryAfterSecs derives a 429 Retry-After hint: how long until the
// backlog ahead of a retry likely drains, from the live queue depth and
// the measured drain rate. Without rate evidence it assumes one second
// per queued job per worker. Clamped to [1, 60].
func (s *Server) retryAfterSecs() int {
	qlen := len(s.jobQueue())
	var secs float64
	if rate := s.drainRate(); rate > 0 {
		secs = (float64(qlen) + 1) / rate
	} else {
		secs = float64(qlen)/float64(s.opts.Workers) + 1
	}
	n := int(secs + 0.999)
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return n
}

// --- HTTP ---

// Handler returns the service's HTTP API:
//
//	POST /jobs                   submit a JobRequest → 202 {id} | 400 | 429 | 503
//	GET  /jobs                   list job statuses
//	GET  /jobs/{id}              one job's status → 200 | 404
//	GET  /jobs/{id}/checkpoint   latest live checkpoint, ACKP binary → 200 | 404
//	POST /jobs/{id}/resume       submit a job resuming from a shipped
//	                             ACKP snapshot (router failover hand-off)
//	GET  /healthz                liveness + metrics (200 while the process serves)
//	GET  /readyz                 admission readiness → 200 | 503 draining,
//	                             journal replay in progress, or recovery failed
//	GET  /statz                  metrics + breaker states
//	GET  /metrics                Prometheus text exposition
//
// 429 and retryable 503 responses carry a Retry-After header; the 429 one
// is derived from the queue depth and the pool's measured drain rate.
// Read-only endpoints return 405 for any method but GET.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req JobRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				s.httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
				return
			}
			id, err := s.Submit(req)
			if err != nil {
				se, ok := err.(*SubmitError)
				if !ok {
					se = &SubmitError{Status: http.StatusInternalServerError, Msg: err.Error()}
				}
				if se.RetryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
				}
				if se.ID != "" {
					// Keyed shed: hand back the id so the client can GET the
					// distinct "shed" answer (and retry the key later).
					s.writeJSON(w, se.Status, map[string]string{"error": se.Msg, "id": se.ID, "reason": "shed"})
					return
				}
				s.httpError(w, se.Status, se.Msg)
				return
			}
			// An idempotent re-submit returns the original job, which may
			// already have progressed past queued; report its actual state.
			state := string(StateQueued)
			if st, ok := s.Status(id); ok {
				state = string(st.State)
			}
			s.writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": state})
		case http.MethodGet:
			s.writeJSON(w, http.StatusOK, s.Jobs())
		default:
			s.httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/jobs/"), "/")
		switch sub {
		case "checkpoint":
			s.getOnly(func(w http.ResponseWriter, r *http.Request) {
				s.handleCheckpoint(w, id)
			})(w, r)
			return
		case "resume":
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				s.httpError(w, http.StatusMethodNotAllowed, "use POST")
				return
			}
			s.handleResume(w, r, id)
			return
		default:
			if sub != "" {
				s.httpError(w, http.StatusNotFound, "no such endpoint /jobs/{id}/"+sub)
				return
			}
		}
		s.getOnly(func(w http.ResponseWriter, r *http.Request) {
			st, ok := s.Status(id)
			if !ok {
				s.mu.Lock()
				key, shed := s.shedByID[id]
				s.mu.Unlock()
				if shed {
					// Distinct from "never seen": this id was allocated to a keyed
					// submission and shed at admission. Re-submitting the key is a
					// fresh attempt.
					s.writeJSON(w, http.StatusNotFound, map[string]string{
						"error":           "job " + id + " was shed at admission",
						"reason":          "shed",
						"idempotency_key": key,
					})
					return
				}
				s.httpError(w, http.StatusNotFound, "no such job "+id)
				return
			}
			s.writeJSON(w, http.StatusOK, st)
		})(w, r)
	})
	mux.HandleFunc("/healthz", s.getOnly(func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "draining": s.Draining(),
			"recovering": s.recovering.Load(), "metrics": s.Metrics(),
		})
	}))
	mux.HandleFunc("/readyz", s.getOnly(func(w http.ResponseWriter, r *http.Request) {
		// Not ready means "stop routing here": draining, journal replay
		// still running, or recovery dead — a router or LB probing this
		// endpoint must take the worker out of rotation in all three.
		if reason, retry := s.notReady(); reason != "" {
			if retry > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(retry))
			}
			s.httpError(w, http.StatusServiceUnavailable, reason)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "queued": len(s.jobQueue()), "queue_depth": s.opts.QueueDepth,
		})
	}))
	mux.HandleFunc("/statz", s.getOnly(func(w http.ResponseWriter, r *http.Request) {
		// warmth is the router's placement hint: how much reusable
		// translation/template state this worker holds. Always present so
		// probes can parse it unconditionally; all zero when warm starts
		// are disabled.
		s.writeJSON(w, http.StatusOK, map[string]any{
			"metrics": s.Metrics(), "breakers": s.Breakers(),
			"warmth": map[string]int{
				"tbstore_blocks":   s.tbstore.Len(),
				"tbstore_segments": s.tbstore.Stats().Segments,
				"warm_templates":   s.warm.size(),
			},
		})
	}))
	mux.HandleFunc("/metrics", s.getOnly(s.handleMetrics))
	return mux
}

// getOnly rejects every method but GET with 405 (read-only endpoints used
// to accept POST/PUT/DELETE silently).
func (s *Server) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			s.httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h(w, r)
	}
}

// writeJSON encodes v to the response. Encode errors (a closed connection,
// or an unencodable value — a server bug) used to be swallowed; they are
// logged so neither failure mode is silent.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.opts.Logger.Printf("server: encoding %d response: %v", code, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, map[string]string{"error": msg})
}
