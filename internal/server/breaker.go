package server

import (
	"errors"
	"sync"
	"time"

	"atomemu/internal/core"
	"atomemu/internal/engine"
)

// breakerState is the classic three-state circuit breaker.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker guards one emulation scheme. While open, new jobs asking for the
// scheme are demoted to portable HST; after the cooldown one probe job runs
// natively (half-open) and its outcome closes or re-opens the breaker.
type breaker struct {
	failures int
	state    breakerState
	openedAt time.Time
	trips    uint64
}

// breakerSet tracks one breaker per scheme name.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, now: time.Now,
		m: make(map[string]*breaker)}
}

func (bs *breakerSet) get(scheme string) *breaker {
	b := bs.m[scheme]
	if b == nil {
		b = &breaker{}
		bs.m[scheme] = b
	}
	return b
}

// route decides what scheme a job asking for `scheme` actually runs under.
// probe is set when this run is the half-open health check whose outcome
// will close or re-open the breaker. HST is the demotion target and so is
// never itself demoted — an open HST breaker has nowhere safer to go.
func (bs *breakerSet) route(scheme string) (effective string, demoted, probe bool) {
	if bs.threshold <= 0 || scheme == "hst" {
		return scheme, false, false
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(scheme)
	switch b.state {
	case breakerOpen:
		if bs.now().Sub(b.openedAt) >= bs.cooldown {
			b.state = breakerHalfOpen
			return scheme, false, true
		}
		return "hst", true, false
	case breakerHalfOpen:
		// A probe is already in flight; stay demoted until it reports.
		return "hst", true, false
	}
	return scheme, false, false
}

// report feeds a finished run back. Only native runs count: a demoted run
// says nothing about the broken scheme's health. tripworthy marks failures
// that implicate the scheme (see schemeTripworthy).
func (bs *breakerSet) report(scheme string, probe, tripworthy bool) {
	if bs.threshold <= 0 || scheme == "hst" {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(scheme)
	if probe {
		if tripworthy {
			b.state = breakerOpen
			b.openedAt = bs.now()
			b.trips++
		} else {
			b.state = breakerClosed
			b.failures = 0
		}
		return
	}
	if b.state != breakerClosed {
		return
	}
	if !tripworthy {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= bs.threshold {
		b.state = breakerOpen
		b.openedAt = bs.now()
		b.trips++
	}
}

// BreakerStatus is the wire form of one scheme's breaker.
type BreakerStatus struct {
	Scheme   string `json:"scheme"`
	State    string `json:"state"`
	Failures int    `json:"failures"`
	Trips    uint64 `json:"trips"`
}

func (bs *breakerSet) statuses() []BreakerStatus {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make([]BreakerStatus, 0, len(bs.m))
	for _, s := range core.SchemeNames() {
		b := bs.m[s]
		if b == nil {
			continue
		}
		out = append(out, BreakerStatus{Scheme: s, State: b.state.String(),
			Failures: b.failures, Trips: b.trips})
	}
	return out
}

func (bs *breakerSet) tripCount() uint64 {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var n uint64
	for _, b := range bs.m {
		n += b.trips
	}
	return n
}

// schemeTripworthy classifies stop errors that implicate the emulation
// scheme rather than the guest or its budgets: exhausted rollback recovery,
// progress-watchdog trips, and scheme-level emulation errors. Guest
// deadlocks, deadlines, cancellations and memory faults are the tenant's
// problem and must not poison the scheme for other tenants.
func schemeTripworthy(err error) bool {
	var rex *engine.RecoveryExhaustedError
	var wd *core.WatchdogError
	var em *core.EmulationError
	return errors.As(err, &rex) || errors.As(err, &wd) || errors.As(err, &em)
}
