package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"atomemu/internal/checkpoint"
	"atomemu/internal/engine"
)

// This file is the server's warm-start layer: checkpoint-templated job
// forking. The first checkpoint a cold run captures is a complete,
// immutable cut of the machine a fixed virtual time into the guest — for a
// repeat submission of the same image under the same configuration, that
// cut IS the new job's prefix. Publishing it as a template lets later jobs
// fork via engine.ResumeFromSnapshot over the snapshot's copy-on-write
// frames instead of re-loading and re-executing the prologue, while the
// virtual-time model keeps the forked run cycle- and output-identical to a
// cold one (checkpoint capture is uncharged, so the cut is deterministic).

// warmTemplate is one published fork point: the producing run's first
// checkpoint plus everything a fork needs to attach to the shared
// translation store soundly — the image identity/span and the producer's
// per-page store counts at (or conservatively after) the cut, seeded into
// the fork's store watch so pages the producer had already mutated stay
// unshareable in the fork too.
type warmTemplate struct {
	snap  *checkpoint.Snapshot
	seed  []uint64
	image [32]byte
	base  uint32
	size  uint32

	lastUse uint64 // guarded by warmPool.mu
}

// warmPool is a bounded LRU registry of templates keyed by image content
// and effective job configuration. A nil *warmPool is valid and inert —
// the server leaves it nil unless Options.WarmPoolSize enables it.
type warmPool struct {
	max int

	forks     atomic.Uint64 // jobs started from a template
	publishes atomic.Uint64 // templates published
	fallbacks atomic.Uint64 // forks that failed and ran cold instead
	evictions atomic.Uint64 // templates dropped by the size cap

	mu   sync.Mutex
	seq  uint64
	tmpl map[string]*warmTemplate
}

func newWarmPool(max int) *warmPool {
	if max <= 0 {
		return nil
	}
	return &warmPool{max: max, tmpl: make(map[string]*warmTemplate)}
}

// lookup returns the template for key, if any, refreshing its recency.
func (p *warmPool) lookup(key string) *warmTemplate {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.tmpl[key]
	if t != nil {
		p.seq++
		t.lastUse = p.seq
	}
	return t
}

// publish registers a template for key. First-wins: the first checkpoint of
// any successful run under a given key is deterministic, so a later
// publisher has nothing newer to offer and replacing would only churn the
// pool. Past the size cap the least-recently-used template is dropped.
func (p *warmPool) publish(key string, t *warmTemplate) {
	if p == nil || t == nil || t.snap == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tmpl[key]; ok {
		return
	}
	p.seq++
	t.lastUse = p.seq
	p.tmpl[key] = t
	p.publishes.Add(1)
	for len(p.tmpl) > p.max {
		victimKey := ""
		var victim *warmTemplate
		for k, v := range p.tmpl {
			if victim == nil || v.lastUse < victim.lastUse {
				victimKey, victim = k, v
			}
		}
		delete(p.tmpl, victimKey)
		p.evictions.Add(1)
	}
}

// size reports the live template count.
func (p *warmPool) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tmpl)
}

// warmJobKey identifies a fork-compatibility class: image content, the
// effective scheme, and every tenant-settable knob that changes what the
// machine computes or when its first checkpoint cuts. Two jobs with equal
// keys run byte-identically, so one's first checkpoint is a valid prefix
// for the other.
func warmJobKey(j *job, cfg engine.Config) string {
	return fmt.Sprintf("%x|%s|t=%d a=%d mem=%d hb=%d mgi=%d fuse=%t ce=%d ra=%d vd=%d wd=%d cb=%d tier=%t hot=%d",
		j.imageHash, cfg.Scheme, j.threads, j.arg, cfg.MemBytes, cfg.HashBits,
		cfg.MaxGuestInstrs, cfg.FuseAtomics, cfg.CheckpointEvery, cfg.RecoveryAttempts,
		cfg.VirtualDeadline, cfg.WatchdogSCFails, cfg.ChainBudget, cfg.Tiered, cfg.HotThreshold)
}

// templateCapture wraps a job's checkpoint sink to steal the run's first
// snapshot as a fork template. The machine pointer is published before the
// run starts; the seed counts are read at capture time — they may include
// stores that landed after the cut, which only over-marks pages as mutated
// (sound: a fork never shares more than the producer could prove pristine).
type templateCapture struct {
	m    atomic.Pointer[engine.Machine]
	snap atomic.Pointer[checkpoint.Snapshot]
	seed atomic.Pointer[[]uint64]
	next func(*checkpoint.Snapshot)
}

// sink is installed as the engine's CheckpointSink; it forwards every
// snapshot to the wrapped sink (the durability spiller) unchanged.
func (t *templateCapture) sink(snap *checkpoint.Snapshot) {
	if t.snap.CompareAndSwap(nil, snap) {
		if m := t.m.Load(); m != nil {
			counts := m.ImageStoreCounts()
			t.seed.Store(&counts)
		}
	}
	if t.next != nil {
		t.next(snap)
	}
}

// template assembles the published warmTemplate after a successful run, or
// nil when no checkpoint was captured.
func (t *templateCapture) template(j *job) *warmTemplate {
	snap := t.snap.Load()
	if snap == nil {
		return nil
	}
	var seed []uint64
	if p := t.seed.Load(); p != nil {
		seed = *p
	}
	return &warmTemplate{snap: snap, seed: seed, image: j.imageHash, base: j.imageBase, size: j.imageSize}
}
