package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"atomemu/internal/engine"
	"atomemu/internal/gac"
)

func b64(p []byte) string { return base64.StdEncoding.EncodeToString(p) }

// The fabric-facing contract of one worker: readyz honesty during replay,
// Retry-After on sheds, and the checkpoint → resume hand-off a router
// uses to move a job between workers.

// milestoneSrc prints a running total after every outer loop of 1000
// atomic increments; a resume that lost or repeated work corrupts the
// printed sequence, not just the final value.
const milestoneSrc = `
var total;
func main(n) {
    var outer = 0;
    var i = 0;
    while (outer < n) {
        i = 0;
        while (i < 1000) {
            atomic_add(&total, 1);
            i = i + 1;
        }
        outer = outer + 1;
        print(total);
    }
    exit(0);
}
`

// uninterruptedOutput runs the program on a bare engine — the ground truth
// a resumed run must reproduce byte-identically.
func uninterruptedOutput(t *testing.T, src string, arg uint32) []uint32 {
	t.Helper()
	im, err := gac.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.NewMachine(engine.DefaultConfig("pico-cas"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, arg); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Output()
}

// TestReadyzDuringBackgroundReplay: while the journal replay runs, /readyz
// answers 503 with a Retry-After and submissions are refused with 503 —
// exactly what a router needs to keep the worker out of rotation — and
// both flip as soon as replay finishes.
func TestReadyzDuringBackgroundReplay(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Options{
		Workers:          1,
		DataDir:          t.TempDir(),
		BackgroundReplay: true,
		testReplayHold:   hold,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during replay: HTTP %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("replay-window 503 carried no Retry-After header")
	}
	if !bytes.Contains(body, []byte("replay")) {
		t.Fatalf("readyz 503 body %q does not name the replay window", body)
	}
	if _, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 1}); err == nil {
		t.Fatal("submission during replay was admitted, want 503")
	} else if se, ok := err.(*SubmitError); !ok || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("submission during replay: %v, want a 503 SubmitError", err)
	}

	close(hold)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz still %d after replay finished", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	id, err := s.Submit(JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 10})
	if err != nil {
		t.Fatalf("post-replay submit: %v", err)
	}
	awaitTerminal(t, s, id)
}

// TestShedCarriesRetryAfterHeader: a 429 shed over HTTP carries a
// Retry-After header derived from the backlog, so clients back off
// instead of hammering a full queue.
func TestShedCarriesRetryAfterHeader(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Fill the worker and the queue with slow jobs, then keep submitting
	// until one bounces. The wall deadline keeps cleanup bounded.
	var got *http.Response
	for i := 0; i < 10 && got == nil; i++ {
		body, _ := json.Marshal(JobRequest{
			Scheme: "pico-cas", GAC: spinGAC, Arg: 1, DeadlineMS: 3000,
		})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			resp.Body.Close()
		case http.StatusTooManyRequests:
			got = resp
		default:
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("submit %d: HTTP %d (%s)", i, resp.StatusCode, b)
		}
	}
	if got == nil {
		t.Fatal("queue never filled: no 429 in 10 submissions")
	}
	defer got.Body.Close()
	ra := got.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", ra)
	}
}

// TestCheckpointResumeAcrossWorkers is the hand-off a router performs on
// failover, driven over plain HTTP: export a running job's checkpoint
// from worker A, ship it to worker B via POST /jobs/{id}/resume, and
// observe B finish with output byte-identical to an uninterrupted run.
func TestCheckpointResumeAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second hand-off soak")
	}
	const arg = 400
	ref := uninterruptedOutput(t, milestoneSrc, arg)

	a := newTestServer(t, Options{Workers: 2})
	b := newTestServer(t, Options{Workers: 2})
	tsA := httptest.NewServer(a.Handler())
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)

	req := JobRequest{
		Scheme: "pico-cas", GAC: milestoneSrc, Arg: arg,
		Config: JobConfig{CheckpointEvery: 5000},
	}
	id, err := a.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Poll the checkpoint endpoint until the job has one to export.
	var snap []byte
	var vt string
	deadline := time.Now().Add(30 * time.Second)
	for snap == nil {
		if time.Now().After(deadline) {
			t.Fatal("worker A never exported a checkpoint")
		}
		resp, err := http.Get(tsA.URL + "/jobs/" + id + "/checkpoint")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			snap, err = io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			vt = resp.Header.Get("X-Atomemu-Virtual-Time")
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if vt == "" || vt == "0" {
		t.Fatalf("checkpoint export carried virtual time %q, want > 0", vt)
	}

	// Ship it to worker B under the router-style alias.
	rr := ResumeRequest{Request: req, SnapshotB64: b64(snap), Resumes: 1}
	body, _ := json.Marshal(rr)
	resp, err := http.Post(tsB.URL+"/jobs/fab-x/resume", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ans struct {
		ID      string `json:"id"`
		Resumed bool   `json:"resumed"`
		Error   string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume: HTTP %d (%s)", resp.StatusCode, ans.Error)
	}
	if !ans.Resumed {
		t.Fatal("worker B did not adopt the snapshot (resumed=false)")
	}

	st := awaitTerminal(t, b, ans.ID)
	if st.State != StateDone {
		t.Fatalf("resumed job on B: state=%s err=%q", st.State, st.Error)
	}
	if st.RestartResumes != 1 {
		t.Fatalf("resumed job reports %d resumes, want 1", st.RestartResumes)
	}
	if len(st.Output) != len(ref) {
		t.Fatalf("resumed output has %d entries, reference %d", len(st.Output), len(ref))
	}
	for i := range ref {
		if st.Output[i] != ref[i] {
			t.Fatalf("resumed output diverges at %d: got %d, want %d", i, st.Output[i], ref[i])
		}
	}

	// A re-shipped resume (same alias) is absorbed by the idempotency key:
	// same id, nothing admitted twice.
	resp2, err := http.Post(tsB.URL+"/jobs/fab-x/resume", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var again struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if again.ID != ans.ID {
		t.Fatalf("re-shipped resume admitted a second job %s, want %s", again.ID, ans.ID)
	}
}
