// Package stats collects the profiling counters behind the paper's
// evaluation: instruction censuses (Table I), time-breakdown components
// (Fig. 12) and event rates (hash conflicts, false sharing, HTM aborts).
//
// A CPU value is written by exactly one vCPU goroutine; cross-thread readers
// must only inspect it after the machine has quiesced (or accept torn but
// monotonic counter reads — all fields are plain uint64 counters).
package stats

import "fmt"

// Component classifies where virtual time is spent, matching the stacked
// bars of the paper's Figure 12.
type Component uint8

// Time components.
const (
	CompNative     Component = iota // basic emulation work
	CompExclusive                   // start/end_exclusive and waiting on it
	CompInstrument                  // store/LL/SC instrumentation
	CompMProtect                    // protection syscalls and page faults
	CompHTM                         // transaction begin/commit/abort
	CompCheckpoint                  // checkpoint capture (off the guest-visible clock)
	NumComponents
)

var componentNames = [NumComponents]string{
	CompNative:     "native",
	CompExclusive:  "exclusive",
	CompInstrument: "instrument",
	CompMProtect:   "mprotect",
	CompHTM:        "htm",
	CompCheckpoint: "checkpoint",
}

func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component?%d", uint8(c))
}

// CPU holds one vCPU's counters.
type CPU struct {
	// Instruction census (Table I).
	GuestInstrs uint64
	IROps       uint64
	Loads       uint64
	Stores      uint64
	LLs         uint64
	SCs         uint64
	SCFails     uint64

	// Scheme events.
	HashConflicts uint64 // SC failed due to hash-entry change by an aliasing address
	PageFaults    uint64 // PST store faults taken
	FalseSharing  uint64 // PST faults on the page but not the monitored word
	HTMCommits    uint64
	HTMAborts     uint64
	ExclSections  uint64 // stop-the-world sections entered

	// Resilience events (abort backoff, degradation, watchdog).
	HTMRetries      uint64 // transactional attempts re-issued after a retryable abort
	HTMBackoffWaits uint64 // backoff waits taken before those retries
	SchemeFallbacks uint64 // monitors demoted to the portable fallback path
	WatchdogTrips   uint64 // progress-watchdog diagnostics raised

	// Checkpoint/recovery events. These live at machine level (per-CPU
	// counters are themselves rolled back by a restore) and are merged into
	// the aggregate by engine.Machine.AggregateStats; per-vCPU values stay 0.
	Checkpoints      uint64 // consistent cuts captured
	CheckpointPages  uint64 // page frames copied across all captures
	RecoveryAttempts uint64 // rollback recoveries attempted
	RecoveryRestores uint64 // checkpoint restores completed

	// Translation-cache events (the host-side contention story: shared
	// lookups are lock-free, and racing same-pc translations discard the
	// loser's block).
	TBSharedLookups uint64 // local-cache misses that consulted the shared TB cache
	TBTranslations  uint64 // blocks this vCPU translated itself
	TBRaceDiscards  uint64 // translations discarded after losing the publish race

	// Virtual cycles by component.
	Cycles [NumComponents]uint64
}

// Charge adds cycles to a component.
func (c *CPU) Charge(comp Component, cycles uint64) { c.Cycles[comp] += cycles }

// TotalCycles sums all components.
func (c *CPU) TotalCycles() uint64 {
	var t uint64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// Add accumulates other into c (for machine-wide aggregation).
func (c *CPU) Add(other *CPU) {
	c.GuestInstrs += other.GuestInstrs
	c.IROps += other.IROps
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.LLs += other.LLs
	c.SCs += other.SCs
	c.SCFails += other.SCFails
	c.HashConflicts += other.HashConflicts
	c.PageFaults += other.PageFaults
	c.FalseSharing += other.FalseSharing
	c.HTMCommits += other.HTMCommits
	c.HTMAborts += other.HTMAborts
	c.ExclSections += other.ExclSections
	c.HTMRetries += other.HTMRetries
	c.HTMBackoffWaits += other.HTMBackoffWaits
	c.SchemeFallbacks += other.SchemeFallbacks
	c.WatchdogTrips += other.WatchdogTrips
	c.Checkpoints += other.Checkpoints
	c.CheckpointPages += other.CheckpointPages
	c.RecoveryAttempts += other.RecoveryAttempts
	c.RecoveryRestores += other.RecoveryRestores
	c.TBSharedLookups += other.TBSharedLookups
	c.TBTranslations += other.TBTranslations
	c.TBRaceDiscards += other.TBRaceDiscards
	for i := range c.Cycles {
		c.Cycles[i] += other.Cycles[i]
	}
}

// StoreToLLSCRatio returns how many regular stores execute per LL/SC pair —
// the discriminating statistic of the paper's Table I (88x .. 3000x on
// PARSEC).
func (c *CPU) StoreToLLSCRatio() float64 {
	atomics := c.LLs
	if atomics == 0 {
		return 0
	}
	return float64(c.Stores) / float64(atomics)
}

// Breakdown returns the fraction of total cycles per component.
func (c *CPU) Breakdown() [NumComponents]float64 {
	var out [NumComponents]float64
	total := c.TotalCycles()
	if total == 0 {
		return out
	}
	for i, v := range c.Cycles {
		out[i] = float64(v) / float64(total)
	}
	return out
}
