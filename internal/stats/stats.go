// Package stats collects the profiling counters behind the paper's
// evaluation: instruction censuses (Table I), time-breakdown components
// (Fig. 12) and event rates (hash conflicts, false sharing, HTM aborts).
//
// A CPU value is written by exactly one vCPU goroutine; cross-thread readers
// must only inspect it after the machine has quiesced (or accept torn but
// monotonic counter reads — all fields are plain uint64 counters).
package stats

import (
	"fmt"
	"reflect"
	"strings"
)

// Component classifies where virtual time is spent, matching the stacked
// bars of the paper's Figure 12.
type Component uint8

// Time components.
const (
	CompNative      Component = iota // basic emulation work
	CompExclusive                    // start/end_exclusive and waiting on it
	CompInstrument                   // store/LL/SC instrumentation
	CompMProtect                     // protection syscalls and page faults
	CompHTM                          // transaction begin/commit/abort
	CompCheckpoint                   // checkpoint capture (off the guest-visible clock)
	CompTBLookup                     // TB cache probes (local and shared tiers)
	CompTBTranslate                  // decode→IR→optimize pipeline (incl. race-discarded losers)
	NumComponents
)

var componentNames = [NumComponents]string{
	CompNative:      "native",
	CompExclusive:   "exclusive",
	CompInstrument:  "instrument",
	CompMProtect:    "mprotect",
	CompHTM:         "htm",
	CompCheckpoint:  "checkpoint",
	CompTBLookup:    "tb_lookup",
	CompTBTranslate: "tb_translate",
}

func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component?%d", uint8(c))
}

// CPU holds one vCPU's counters.
type CPU struct {
	// Instruction census (Table I).
	GuestInstrs uint64
	IROps       uint64
	Loads       uint64
	Stores      uint64
	LLs         uint64
	SCs         uint64
	SCFails     uint64

	// Scheme events.
	HashConflicts uint64 // SC failed due to hash-entry change by an aliasing address
	PageFaults    uint64 // PST store faults taken
	FalseSharing  uint64 // PST faults on the page but not the monitored word
	HTMCommits    uint64
	HTMAborts     uint64
	ExclSections  uint64 // stop-the-world sections entered

	// Resilience events (abort backoff, degradation, watchdog).
	HTMRetries      uint64 // transactional attempts re-issued after a retryable abort
	HTMBackoffWaits uint64 // backoff waits taken before those retries
	SchemeFallbacks uint64 // monitors demoted to the portable fallback path
	WatchdogTrips   uint64 // progress-watchdog diagnostics raised

	// Checkpoint/recovery events. These live at machine level (per-CPU
	// counters are themselves rolled back by a restore) and are merged into
	// the aggregate by engine.Machine.AggregateStats; per-vCPU values stay 0.
	Checkpoints      uint64 // consistent cuts captured
	CheckpointPages  uint64 // page frames copied across all captures
	RecoveryAttempts uint64 // rollback recoveries attempted
	RecoveryRestores uint64 // checkpoint restores completed

	// Translation-cache events (the host-side contention story: shared
	// lookups are lock-free, and racing same-pc translations discard the
	// loser's block).
	TBSharedLookups uint64 // local-cache misses that consulted the shared TB cache
	TBTranslations  uint64 // blocks this vCPU translated itself
	TBRaceDiscards  uint64 // translations discarded after losing the publish race

	// IR-bypass fast path (chaining + profile-gated tiering).
	ChainLinks     uint64 // successor links installed between per-vCPU TBs
	ChainFollows   uint64 // block transitions taken via a chain link (no dispatch loop)
	TierPromotions uint64 // blocks promoted from the interp tier to optimized IR
	InterpBlocks   uint64 // block executions served by the decoder-direct interp tier

	// Cross-job content-addressed translation store (internal/tbstore):
	// lookups against the process-wide shared view, publications into it,
	// and permanent detaches after the machine mutated its code span.
	TBStoreHits          uint64 // blocks adopted from the shared store
	TBStoreMisses        uint64 // shared-store probes that found nothing
	TBStorePublishes     uint64 // blocks this vCPU published to the store
	TBStoreInvalidations uint64 // views detached after a store into the image span

	// Virtual cycles by component.
	Cycles [NumComponents]uint64
}

// Charge adds cycles to a component.
func (c *CPU) Charge(comp Component, cycles uint64) { c.Cycles[comp] += cycles }

// TotalCycles sums all components.
func (c *CPU) TotalCycles() uint64 {
	var t uint64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// Add accumulates other into c (for machine-wide aggregation). It walks
// the struct by reflection so a newly added counter can never be left
// out of the aggregate — hand-copying fields here silently dropped new
// counters from AggregateStats once the list drifted. Add only runs at
// quiescence (a handful of times per run), so reflection cost is moot.
func (c *CPU) Add(other *CPU) {
	dst := reflect.ValueOf(c).Elem()
	src := reflect.ValueOf(other).Elem()
	for i := 0; i < dst.NumField(); i++ {
		df, sf := dst.Field(i), src.Field(i)
		switch df.Kind() {
		case reflect.Uint64:
			df.SetUint(df.Uint() + sf.Uint())
		case reflect.Array:
			for j := 0; j < df.Len(); j++ {
				df.Index(j).SetUint(df.Index(j).Uint() + sf.Index(j).Uint())
			}
		default:
			panic(fmt.Sprintf("stats.CPU.Add: field %s has unsupported kind %s",
				dst.Type().Field(i).Name, df.Kind()))
		}
	}
}

// Field is one named counter from a CPU, as exported by Fields.
type Field struct {
	Name  string // snake_case field name, e.g. "sc_fails"
	Value uint64
}

// Fields returns every scalar counter of c with a snake_case name, in
// declaration order. The Cycles array is excluded — callers export it
// per component via Component.String. Like Add, this is reflection-
// driven so new counters automatically show up in /metrics.
func (c *CPU) Fields() []Field {
	v := reflect.ValueOf(c).Elem()
	t := v.Type()
	out := make([]Field, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Uint64 {
			continue
		}
		out = append(out, Field{Name: snakeCase(t.Field(i).Name), Value: v.Field(i).Uint()})
	}
	return out
}

// snakeCase converts a Go field name (GuestInstrs, HTMAborts, LLs,
// TBRaceDiscards) to snake_case (guest_instrs, htm_aborts, lls,
// tb_race_discards). Runs of capitals stay together until the last one
// starts a new word; a bare trailing plural "s" (LLs, SCs) sticks to
// its acronym instead of starting one.
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			prevUpper := i > 0 && rs[i-1] >= 'A' && rs[i-1] <= 'Z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			pluralTail := i+2 == len(rs) && rs[i+1] == 's'
			if i > 0 && (!prevUpper || (nextLower && !pluralTail)) {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// StoreToLLSCRatio returns how many regular stores execute per LL/SC pair —
// the discriminating statistic of the paper's Table I (88x .. 3000x on
// PARSEC).
func (c *CPU) StoreToLLSCRatio() float64 {
	atomics := c.LLs
	if atomics == 0 {
		return 0
	}
	return float64(c.Stores) / float64(atomics)
}

// Breakdown returns the fraction of total cycles per component.
func (c *CPU) Breakdown() [NumComponents]float64 {
	var out [NumComponents]float64
	total := c.TotalCycles()
	if total == 0 {
		return out
	}
	for i, v := range c.Cycles {
		out[i] = float64(v) / float64(total)
	}
	return out
}
