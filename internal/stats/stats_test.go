package stats

import (
	"testing"
	"testing/quick"
)

func TestChargeAndTotal(t *testing.T) {
	var c CPU
	c.Charge(CompNative, 100)
	c.Charge(CompExclusive, 50)
	c.Charge(CompNative, 10)
	if c.Cycles[CompNative] != 110 || c.Cycles[CompExclusive] != 50 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
	if c.TotalCycles() != 160 {
		t.Fatalf("total = %d", c.TotalCycles())
	}
}

func TestAddAccumulatesEverything(t *testing.T) {
	a := CPU{GuestInstrs: 1, IROps: 2, Loads: 3, Stores: 4, LLs: 5, SCs: 6,
		SCFails: 7, HashConflicts: 8, PageFaults: 9, FalseSharing: 10,
		HTMCommits: 11, HTMAborts: 12, ExclSections: 13}
	a.Charge(CompMProtect, 14)
	b := a
	a.Add(&b)
	if a.GuestInstrs != 2 || a.SCFails != 14 || a.ExclSections != 26 {
		t.Fatalf("Add missed fields: %+v", a)
	}
	if a.Cycles[CompMProtect] != 28 {
		t.Fatalf("Add missed cycles: %v", a.Cycles)
	}
}

func TestStoreToLLSCRatio(t *testing.T) {
	var c CPU
	if c.StoreToLLSCRatio() != 0 {
		t.Error("zero atomics should give ratio 0, not NaN")
	}
	c.Stores = 880
	c.LLs = 10
	if got := c.StoreToLLSCRatio(); got != 88 {
		t.Errorf("ratio = %v", got)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	f := func(n, e, i, m, h uint32) bool {
		var c CPU
		c.Charge(CompNative, uint64(n))
		c.Charge(CompExclusive, uint64(e))
		c.Charge(CompInstrument, uint64(i))
		c.Charge(CompMProtect, uint64(m))
		c.Charge(CompHTM, uint64(h))
		fr := c.Breakdown()
		if c.TotalCycles() == 0 {
			for _, v := range fr {
				if v != 0 {
					return false
				}
			}
			return true
		}
		sum := 0.0
		for _, v := range fr {
			sum += v
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentString(t *testing.T) {
	want := map[Component]string{
		CompNative: "native", CompExclusive: "exclusive",
		CompInstrument: "instrument", CompMProtect: "mprotect", CompHTM: "htm",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Component(99).String() == "" {
		t.Error("unknown component should still format")
	}
}
