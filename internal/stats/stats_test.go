package stats

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestChargeAndTotal(t *testing.T) {
	var c CPU
	c.Charge(CompNative, 100)
	c.Charge(CompExclusive, 50)
	c.Charge(CompNative, 10)
	if c.Cycles[CompNative] != 110 || c.Cycles[CompExclusive] != 50 {
		t.Fatalf("cycles = %v", c.Cycles)
	}
	if c.TotalCycles() != 160 {
		t.Fatalf("total = %d", c.TotalCycles())
	}
}

func TestAddAccumulatesEverything(t *testing.T) {
	a := CPU{GuestInstrs: 1, IROps: 2, Loads: 3, Stores: 4, LLs: 5, SCs: 6,
		SCFails: 7, HashConflicts: 8, PageFaults: 9, FalseSharing: 10,
		HTMCommits: 11, HTMAborts: 12, ExclSections: 13}
	a.Charge(CompMProtect, 14)
	b := a
	a.Add(&b)
	if a.GuestInstrs != 2 || a.SCFails != 14 || a.ExclSections != 26 {
		t.Fatalf("Add missed fields: %+v", a)
	}
	if a.Cycles[CompMProtect] != 28 {
		t.Fatalf("Add missed cycles: %v", a.Cycles)
	}
}

// fillSentinels sets every scalar slot of c (fields and Cycles entries)
// to a distinct non-zero value and returns how many slots were filled.
func fillSentinels(t *testing.T, c *CPU) int {
	t.Helper()
	v := reflect.ValueOf(c).Elem()
	next := uint64(1)
	slots := 0
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(next)
			next++
			slots++
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(next)
				next++
				slots++
			}
		default:
			t.Fatalf("CPU field %s has kind %s; extend fillSentinels and stats.Add",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return slots
}

// TestAddExhaustive is the drift guard: it fills a CPU with distinct
// sentinels and requires Add to exactly double every slot. A counter
// added to the struct but dropped from accumulation fails here — which
// is how the hand-written 24-field Add this replaced could silently
// lose new counters.
func TestAddExhaustive(t *testing.T) {
	var a CPU
	slots := fillSentinels(t, &a)
	if slots < 28+int(NumComponents) {
		t.Fatalf("only %d slots filled; reflection walk missed fields", slots)
	}
	b := a
	a.Add(&b)
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		name := av.Type().Field(i).Name
		switch f := av.Field(i); f.Kind() {
		case reflect.Uint64:
			if f.Uint() != 2*bv.Field(i).Uint() {
				t.Errorf("Add dropped field %s: got %d, want %d", name, f.Uint(), 2*bv.Field(i).Uint())
			}
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if f.Index(j).Uint() != 2*bv.Field(i).Index(j).Uint() {
					t.Errorf("Add dropped %s[%d]", name, j)
				}
			}
		}
	}
}

func TestFields(t *testing.T) {
	var c CPU
	c.SCFails = 7
	c.HTMAborts = 9
	c.LLs = 3
	got := map[string]uint64{}
	for _, f := range c.Fields() {
		if _, dup := got[f.Name]; dup {
			t.Fatalf("duplicate field name %q", f.Name)
		}
		got[f.Name] = f.Value
	}
	for name, want := range map[string]uint64{
		"sc_fails": 7, "htm_aborts": 9, "lls": 3,
		"guest_instrs": 0, "ir_ops": 0, "scs": 0,
		"tb_race_discards": 0, "htm_backoff_waits": 0,
		"chain_links": 0, "chain_follows": 0,
		"tier_promotions": 0, "interp_blocks": 0,
	} {
		v, ok := got[name]
		if !ok {
			t.Errorf("Fields missing %q (have %v)", name, got)
		} else if v != want {
			t.Errorf("Fields[%q] = %d, want %d", name, v, want)
		}
	}
	if _, ok := got["cycles"]; ok {
		t.Error("Fields must exclude the Cycles array")
	}
	// Every uint64 field must be represented.
	n := reflect.TypeOf(CPU{}).NumField() - 1 // minus Cycles
	if len(got) != n {
		t.Errorf("Fields returned %d entries, want %d", len(got), n)
	}
}

func TestStoreToLLSCRatio(t *testing.T) {
	var c CPU
	if c.StoreToLLSCRatio() != 0 {
		t.Error("zero atomics should give ratio 0, not NaN")
	}
	c.Stores = 880
	c.LLs = 10
	if got := c.StoreToLLSCRatio(); got != 88 {
		t.Errorf("ratio = %v", got)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	f := func(n, e, i, m, h uint32) bool {
		var c CPU
		c.Charge(CompNative, uint64(n))
		c.Charge(CompExclusive, uint64(e))
		c.Charge(CompInstrument, uint64(i))
		c.Charge(CompMProtect, uint64(m))
		c.Charge(CompHTM, uint64(h))
		fr := c.Breakdown()
		if c.TotalCycles() == 0 {
			for _, v := range fr {
				if v != 0 {
					return false
				}
			}
			return true
		}
		sum := 0.0
		for _, v := range fr {
			sum += v
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentString(t *testing.T) {
	want := map[Component]string{
		CompNative: "native", CompExclusive: "exclusive",
		CompInstrument: "instrument", CompMProtect: "mprotect", CompHTM: "htm",
		CompTBLookup: "tb_lookup", CompTBTranslate: "tb_translate",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Component(99).String() == "" {
		t.Error("unknown component should still format")
	}
}
