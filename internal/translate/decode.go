package translate

import (
	"fmt"

	"atomemu/internal/arch"
)

// Decoded is a decoded-but-not-lowered guest basic block, the unit of the
// Interp tier: cold code runs straight off this instruction slice with no
// IR and no optimizer. Instructions are contiguous — Decode never follows
// branches — so the i'th instruction sits at Start + i*arch.InstrBytes.
type Decoded struct {
	Start    uint32
	Instrs   []arch.Instruction
	GuestLen int // == len(Instrs); mirrors ir.Block.GuestLen
	// HasStores/HasLoads mirror ir.Block's instrumentation-sensitivity
	// flags: whether the block contains plain guest stores/loads. The
	// interp tier consults Options.Instrument* at run time, so these only
	// matter for cache-retention decisions, not execution.
	HasStores bool
	HasLoads  bool
}

// End returns the guest pc immediately after the decoded instructions.
// When the block was truncated (fetch fault or cap) without a block-ending
// instruction, execution resumes here.
func (d *Decoded) End() uint32 {
	return d.Start + uint32(len(d.Instrs))*arch.InstrBytes
}

// Decode reads the guest basic block at pc without lowering it to IR.
// Block boundaries, the instruction cap, and fault behaviour match Block
// exactly: a fetch fault after at least one instruction truncates the
// block so the fault is taken precisely on re-entry, and a decode error
// fails the whole block just as it would fail translation.
func Decode(fetch FetchFunc, pc uint32, opts Options) (*Decoded, error) {
	maxInstrs := opts.MaxGuestInstrs
	if maxInstrs <= 0 {
		maxInstrs = DefaultMaxGuestInstrs
	}
	d := &Decoded{Start: pc}
	cur := pc
	for n := 0; n < maxInstrs; n++ {
		word, err := fetch(cur)
		if err != nil {
			if n > 0 {
				d.GuestLen = n
				return d, nil
			}
			return nil, fmt.Errorf("translate: fetch at %#08x: %w", cur, err)
		}
		in, err := arch.Decode(word)
		if err != nil {
			return nil, fmt.Errorf("translate: at %#08x: %w", cur, err)
		}
		d.Instrs = append(d.Instrs, in)
		d.GuestLen = n + 1
		switch in.Op {
		case arch.STR, arch.STRB, arch.STRR, arch.STRBR:
			d.HasStores = true
		case arch.LDR, arch.LDRB, arch.LDRR, arch.LDRBR:
			d.HasLoads = true
		}
		if in.Op.EndsBlock() {
			return d, nil
		}
		cur += arch.InstrBytes
	}
	return d, nil
}
