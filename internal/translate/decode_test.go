package translate

import (
	"fmt"
	"testing"

	"atomemu/internal/arch"
	"atomemu/internal/ir"
)

// decode is the Decode-side twin of the translate() helper.
func decode(t *testing.T, src string, opts Options) *Decoded {
	t.Helper()
	im := mustAssemble(t, src)
	d, err := Decode(fetchFrom(im), im.Org, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDecodeMatchesBlockBoundaries: the interp tier and the IR tier must
// agree on where every basic block ends, or the two tiers would retire
// different instruction streams for the same pc.
func TestDecodeMatchesBlockBoundaries(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{"straight-line", `
    movi r0, #5
    addi r1, r0, #3
    hlt
`, Options{}},
		{"branch-ended", `
    movi r0, #1
    subsi r0, r0, #1
    bne somewhere
somewhere:
    hlt
`, Options{}},
		{"capped", `
    movi r0, #0
    movi r1, #1
    movi r2, #2
    movi r3, #3
    hlt
`, Options{MaxGuestInstrs: 3}},
		{"llsc", `
    ldr r4, =cell
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    hlt
.align 4
cell: .word 0
`, Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := translate(t, tc.src, tc.opts)
			d := decode(t, tc.src, tc.opts)
			if d.GuestLen != b.GuestLen {
				t.Errorf("Decode ends the block after %d instructions, Block after %d",
					d.GuestLen, b.GuestLen)
			}
			if len(d.Instrs) != d.GuestLen {
				t.Errorf("GuestLen %d disagrees with %d decoded instructions",
					d.GuestLen, len(d.Instrs))
			}
			if want := d.Start + uint32(d.GuestLen)*arch.InstrBytes; d.End() != want {
				t.Errorf("End() = %#x, want %#x", d.End(), want)
			}
		})
	}
}

// TestDecodeFetchFaultTruncates mirrors Block's fault contract: a fetch
// fault mid-block truncates so the fault is taken precisely on re-entry at
// End(); a fault on the very first instruction fails the decode.
func TestDecodeFetchFaultTruncates(t *testing.T) {
	im := mustAssemble(t, `
    movi r0, #1
    movi r1, #2
    movi r2, #3
    hlt
`)
	limit := im.Org + 2*arch.InstrBytes
	fetch := func(pc uint32) (uint32, error) {
		if pc >= limit {
			return 0, fmt.Errorf("page not mapped at %#x", pc)
		}
		return fetchFrom(im)(pc)
	}
	d, err := Decode(fetch, im.Org, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.GuestLen != 2 {
		t.Errorf("GuestLen = %d, want 2 (truncated before the fault)", d.GuestLen)
	}
	if d.End() != limit {
		t.Errorf("End() = %#x, want the faulting pc %#x", d.End(), limit)
	}
	if _, err := Decode(fetch, limit, Options{}); err == nil {
		t.Error("decode starting at an unmapped pc must fail")
	}
}

// countTerminators: ir.Verify enforces exactly one terminator; count here
// so test failures say what went wrong instead of a generic verify error.
func countTerminators(b *ir.Block) int {
	n := 0
	for _, in := range b.Ops {
		if in.Op.IsTerminator() {
			n++
		}
	}
	return n
}

// TestSuperblockFollowsUnconditionalBranch: with FollowUncond a B AL does
// not end the block — translation continues at the target, the branch
// itself costs one guest instruction and emits no IR, and the region still
// has exactly one terminator.
func TestSuperblockFollowsUnconditionalBranch(t *testing.T) {
	src := `
    movi r0, #1
    b tail
dead:
    movi r0, #99
tail:
    movi r1, #2
    hlt
`
	plain := translate(t, src, Options{})
	if plain.GuestLen != 2 {
		t.Fatalf("without FollowUncond the B must end the block, GuestLen = %d", plain.GuestLen)
	}
	super := translate(t, src, Options{FollowUncond: true})
	// movi + b + movi + hlt: four guest instructions, the skipped `dead`
	// path contributes nothing.
	if super.GuestLen != 4 {
		t.Errorf("superblock GuestLen = %d, want 4", super.GuestLen)
	}
	if n := countTerminators(super); n != 1 {
		t.Errorf("superblock has %d terminators, want exactly 1", n)
	}
	for _, in := range super.Ops {
		if in.Imm == 99 {
			t.Error("superblock translated the dead path the branch skips")
		}
	}
}

// TestSuperblockBLWritesLinkRegister: following a BL must still perform the
// call's architectural side effect — lr gets the return address — via an
// explicit MovI, since the branch itself is folded away.
func TestSuperblockBLWritesLinkRegister(t *testing.T) {
	src := `
    movi r0, #5
    bl fn
fn:
    addi r0, r0, #1
    hlt
`
	b := translate(t, src, Options{FollowUncond: true})
	if b.GuestLen != 4 {
		t.Fatalf("GuestLen = %d, want 4", b.GuestLen)
	}
	wantLR := b.Start + 2*arch.InstrBytes // pc after the bl
	found := false
	for _, in := range b.Ops {
		if in.Op == ir.MovI && in.D == ir.RegID(arch.LR) && in.Imm == wantLR {
			found = true
		}
	}
	if !found {
		t.Errorf("no MovI lr, #%#x in the superblock:\n%s", wantLR, b)
	}
}

// TestSuperblockLoopTerminates: each branch target is followed at most once
// per region (the seen set is seeded with the block start), so a tight loop
// or a mutual-recursion ping-pong ends the region with a normal terminator
// instead of unrolling forever.
func TestSuperblockLoopTerminates(t *testing.T) {
	loop := translate(t, `
loop:
    addi r0, r0, #1
    b loop
`, Options{FollowUncond: true})
	if loop.GuestLen != 2 {
		t.Errorf("back edge to the region start must terminate: GuestLen = %d", loop.GuestLen)
	}
	if n := countTerminators(loop); n != 1 {
		t.Errorf("loop region has %d terminators, want 1", n)
	}

	pingpong := translate(t, `
ping:
    addi r0, r0, #1
    b pong
pong:
    addi r0, r0, #2
    b ping
`, Options{FollowUncond: true})
	// ping(2 instrs) + pong followed once + the back edge to ping already
	// seen → terminator. 2 + 2 = 4 guest instructions.
	if pingpong.GuestLen != 4 {
		t.Errorf("ping-pong region GuestLen = %d, want 4", pingpong.GuestLen)
	}
}

// TestSuperblockRespectsCap: a chain of unconditional branches stops
// growing at MaxGuestInstrs even though every target is fresh.
func TestSuperblockRespectsCap(t *testing.T) {
	src := `
    movi r0, #0
    b hop1
hop1:
    movi r1, #1
    b hop2
hop2:
    movi r2, #2
    b hop3
hop3:
    movi r3, #3
    hlt
`
	b := translate(t, src, Options{FollowUncond: true, MaxGuestInstrs: 5})
	if b.GuestLen > 5 {
		t.Errorf("GuestLen = %d exceeds the cap of 5", b.GuestLen)
	}
	if n := countTerminators(b); n != 1 {
		t.Errorf("capped superblock has %d terminators, want 1", n)
	}
}
