// Package translate is the DBT frontend: it decodes a guest basic block and
// lowers it to IR, applying scheme-specific instrumentation decisions at
// translation time exactly as the paper's QEMU modifications do — HST-class
// schemes get their store test emitted inline at the IR level, PICO-ST-class
// schemes route stores through (expensive) helpers, and PICO-CAS leaves
// stores untouched. The IR optimizer runs over the result.
package translate

import (
	"fmt"

	"atomemu/internal/arch"
	"atomemu/internal/ir"
)

// Options steers translation.
type Options struct {
	// InstrumentStores routes guest stores through the scheme hook
	// (ir.InstrStore) instead of the uninstrumented fast path.
	InstrumentStores bool
	// InstrumentLoads routes guest loads through the scheme hook.
	InstrumentLoads bool
	// MaxGuestInstrs caps the instructions per block. Zero means the
	// default (32). The litmus harness uses 1 for single-stepping.
	MaxGuestInstrs int
	// Optimize runs the IR pass pipeline on the translated block.
	Optimize bool
	// FuseAtomics enables rule-based translation (paper §VI): recognized
	// compiler-shaped LL/SC retry loops become single fused host atomics.
	FuseAtomics bool
	// FollowUncond forms superblocks: translation continues across
	// unconditional branches (B AL, BL) instead of ending the block, so a
	// hot region spanning several basic blocks becomes one IR block for
	// the optimizer. Each branch target is followed at most once per
	// block, so loops still terminate the region.
	FollowUncond bool
}

// Mode selects the execution tier a block is prepared for.
type Mode uint8

const (
	// IR is the full decode→IR→optimize pipeline.
	IR Mode = iota
	// Interp interprets straight off the decoder: no IR is built and the
	// optimizer never runs. Used for cold blocks under profile-gated
	// tiering; promotion to IR happens once the block proves hot.
	Interp
)

// DefaultMaxGuestInstrs is the block cap when Options.MaxGuestInstrs is 0.
const DefaultMaxGuestInstrs = 32

// DefaultSuperblockInstrs is the instruction cap used when re-translating
// a hot block with FollowUncond: four plain blocks' worth of room.
const DefaultSuperblockInstrs = 4 * DefaultMaxGuestInstrs

// FetchFunc reads one guest instruction word, typically mmu.Memory.FetchWord
// wrapped to return error.
type FetchFunc func(pc uint32) (uint32, error)

// Block translates the guest basic block starting at pc.
func Block(fetch FetchFunc, pc uint32, opts Options) (*ir.Block, error) {
	maxInstrs := opts.MaxGuestInstrs
	if maxInstrs <= 0 {
		maxInstrs = DefaultMaxGuestInstrs
	}
	b := ir.NewBlock(pc)
	b.GuestLo, b.GuestHi = pc, pc
	// extend widens the translated-from bounds; superblock folding can move
	// cur backwards (a call to an earlier function), so both ends track.
	extend := func(lo, hi uint32) {
		if lo < b.GuestLo {
			b.GuestLo = lo
		}
		if hi > b.GuestHi {
			b.GuestHi = hi
		}
	}
	cur := pc
	var seen map[uint32]bool
	if opts.FollowUncond {
		seen = map[uint32]bool{pc: true}
	}
	for n := 0; n < maxInstrs; {
		word, err := fetch(cur)
		if err != nil {
			if n > 0 {
				// The earlier part of the block is valid; end it before the
				// faulting instruction so the fault is taken precisely.
				b.Emit(ir.Inst{Op: ir.ExitJmp, Addr: cur, GuestPC: cur})
				b.GuestLen = n
				finish(b, opts)
				return b, nil
			}
			return nil, fmt.Errorf("translate: fetch at %#08x: %w", cur, err)
		}
		in, err := arch.Decode(word)
		if err != nil {
			return nil, fmt.Errorf("translate: at %#08x: %w", cur, err)
		}
		if opts.FuseAtomics && in.Op == arch.LDREX {
			if consumed := tryFuse(fetch, b, in, cur, opts); consumed > 0 {
				// A fused window collapses loads and stores into one host
				// atomic; treat it as both-sensitive so retention stays
				// conservative.
				b.HasStores, b.HasLoads = true, true
				n += consumed
				b.GuestLen = n
				extend(cur, cur+uint32(consumed)*arch.InstrBytes)
				cur += uint32(consumed) * arch.InstrBytes
				continue
			}
		}
		if opts.FollowUncond && n+1 < maxInstrs &&
			(in.Op == arch.BL || (in.Op == arch.B && in.Cond == arch.AL)) {
			if target := in.BranchTarget(cur); !seen[target] {
				// Superblock formation: fold the unconditional branch into
				// the block and keep translating at its target. Each target
				// is followed once, so a loop back edge ends the region via
				// the normal terminator path below.
				seen[target] = true
				if in.Op == arch.BL {
					b.Emit(ir.Inst{Op: ir.MovI, D: ir.RegID(arch.LR),
						Imm: cur + arch.InstrBytes, GuestPC: cur})
				}
				n++
				b.GuestLen = n
				extend(cur, cur+arch.InstrBytes)
				cur = target
				continue
			}
		}
		if err := emit(b, in, cur, opts); err != nil {
			return nil, fmt.Errorf("translate: at %#08x (%s): %w", cur, in, err)
		}
		n++
		b.GuestLen = n
		extend(cur, cur+arch.InstrBytes)
		if in.Op.EndsBlock() {
			finish(b, opts)
			return b, nil
		}
		cur += arch.InstrBytes
	}
	// Block cap reached: continue at the next instruction.
	b.Emit(ir.Inst{Op: ir.ExitJmp, Addr: cur, GuestPC: cur - arch.InstrBytes})
	finish(b, opts)
	return b, nil
}

func finish(b *ir.Block, opts Options) {
	if opts.Optimize {
		ir.Optimize(b)
	}
}

// reg converts a guest register, rejecting PC in data positions: GA32
// programs use BX/BL for control flow and may not read or write PC directly.
func reg(r arch.Reg) (ir.RegID, error) {
	if r == arch.PC {
		return 0, fmt.Errorf("pc is not a general operand in GA32")
	}
	return ir.RegID(r), nil
}

var alu3Map = map[arch.Opcode]ir.Op{
	arch.ADD: ir.Add, arch.SUB: ir.Sub, arch.AND: ir.And, arch.ORR: ir.Or,
	arch.EOR: ir.Xor, arch.MUL: ir.Mul, arch.UDIV: ir.UDiv, arch.SDIV: ir.SDiv,
	arch.LSL: ir.Shl, arch.LSR: ir.Shr, arch.ASR: ir.Sar,
	arch.ADDS: ir.FlagsAdd, arch.SUBS: ir.FlagsSub,
}

var alu2iMap = map[arch.Opcode]ir.Op{
	arch.ADDI: ir.AddI, arch.SUBI: ir.SubI, arch.RSBI: ir.RsbI,
	arch.ANDI: ir.AndI, arch.ORRI: ir.OrI, arch.EORI: ir.XorI,
	arch.LSLI: ir.ShlI, arch.LSRI: ir.ShrI, arch.ASRI: ir.SarI,
	arch.ADDSI: ir.FlagsAddI, arch.SUBSI: ir.FlagsSubI,
}

func emit(b *ir.Block, in arch.Instruction, pc uint32, opts Options) error {
	next := pc + arch.InstrBytes
	e := func(op ir.Op, inst ir.Inst) {
		inst.Op = op
		inst.GuestPC = pc
		b.Emit(inst)
	}

	switch in.Op {
	case arch.STR, arch.STRB, arch.STRR, arch.STRBR:
		b.HasStores = true
	case arch.LDR, arch.LDRB, arch.LDRR, arch.LDRBR:
		b.HasLoads = true
	}

	switch in.Op {
	case arch.ADD, arch.SUB, arch.AND, arch.ORR, arch.EOR, arch.MUL,
		arch.UDIV, arch.SDIV, arch.LSL, arch.LSR, arch.ASR,
		arch.ADDS, arch.SUBS:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		e(alu3Map[in.Op], ir.Inst{D: rd, A: rn, B: rm})

	case arch.RSB:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		// rd = rm - rn.
		e(ir.Sub, ir.Inst{D: rd, A: rm, B: rn})

	case arch.ADDI, arch.SUBI, arch.RSBI, arch.ANDI, arch.ORRI, arch.EORI,
		arch.LSLI, arch.LSRI, arch.ASRI, arch.ADDSI, arch.SUBSI:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		e(alu2iMap[in.Op], ir.Inst{D: rd, A: rn, Imm: uint32(in.Imm)})

	case arch.MOV:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		e(ir.Mov, ir.Inst{D: rd, A: rm})

	case arch.MVN:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		e(ir.Not, ir.Inst{D: rd, A: rm})

	case arch.MOVI, arch.MOVW:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		e(ir.MovI, ir.Inst{D: rd, Imm: uint32(in.Imm)})

	case arch.MOVT:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		e(ir.AndI, ir.Inst{D: rd, A: rd, Imm: 0xffff})
		e(ir.OrI, ir.Inst{D: rd, A: rd, Imm: uint32(in.Imm) << 16})

	case arch.CMP, arch.CMN:
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		op := ir.FlagsSub
		if in.Op == arch.CMN {
			op = ir.FlagsAdd
		}
		e(op, ir.Inst{D: b.Temp(), A: rn, B: rm})

	case arch.CMPI:
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		e(ir.FlagsSubI, ir.Inst{D: b.Temp(), A: rn, Imm: uint32(in.Imm)})

	case arch.TST:
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		t := b.Temp()
		e(ir.And, ir.Inst{D: t, A: rn, B: rm})
		e(ir.FlagsNZ, ir.Inst{A: t})

	case arch.LDR, arch.LDRB:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		op := loadOp(in.Op == arch.LDRB, opts.InstrumentLoads)
		e(op, ir.Inst{D: rd, A: rn, Imm: uint32(in.Imm)})

	case arch.LDRR, arch.LDRBR:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		t := b.Temp()
		e(ir.Add, ir.Inst{D: t, A: rn, B: rm})
		op := loadOp(in.Op == arch.LDRBR, opts.InstrumentLoads)
		e(op, ir.Inst{D: rd, A: t})

	case arch.STR, arch.STRB:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		op := storeOp(in.Op == arch.STRB, opts.InstrumentStores)
		e(op, ir.Inst{A: rn, B: rd, Imm: uint32(in.Imm)})

	case arch.STRR, arch.STRBR:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		t := b.Temp()
		e(ir.Add, ir.Inst{D: t, A: rn, B: rm})
		op := storeOp(in.Op == arch.STRBR, opts.InstrumentStores)
		e(op, ir.Inst{A: t, B: rd})

	case arch.LDREX:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		e(ir.LL, ir.Inst{D: rd, A: rn})

	case arch.STREX:
		rd, err := reg(in.Rd)
		if err != nil {
			return err
		}
		rn, err := reg(in.Rn)
		if err != nil {
			return err
		}
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		e(ir.SC, ir.Inst{D: rd, A: rn, B: rm})

	case arch.CLREX:
		e(ir.Clrex, ir.Inst{})

	case arch.DMB:
		e(ir.Fence, ir.Inst{})

	case arch.B:
		target := in.BranchTarget(pc)
		if in.Cond == arch.AL {
			e(ir.ExitJmp, ir.Inst{Addr: target})
		} else {
			e(ir.ExitCond, ir.Inst{Cond: in.Cond, Addr: target, Addr2: next})
		}

	case arch.BL:
		e(ir.MovI, ir.Inst{D: ir.RegID(arch.LR), Imm: next})
		e(ir.ExitJmp, ir.Inst{Addr: in.BranchTarget(pc)})

	case arch.BX:
		rm, err := reg(in.Rm)
		if err != nil {
			return err
		}
		e(ir.ExitInd, ir.Inst{A: rm})

	case arch.SVC:
		e(ir.Syscall, ir.Inst{Imm: uint32(in.Imm), Addr: next})

	case arch.HLT:
		e(ir.Halt, ir.Inst{})

	case arch.NOP:
		// Nothing; a trailing ExitJmp is added by the caller if the block
		// would otherwise be empty.

	case arch.YIELD:
		e(ir.YieldOp, ir.Inst{Addr: next})

	default:
		return fmt.Errorf("unhandled opcode %s", in.Op)
	}
	return nil
}

func loadOp(byte_, instrumented bool) ir.Op {
	switch {
	case byte_ && instrumented:
		return ir.InstrLoadB
	case byte_:
		return ir.LoadB
	case instrumented:
		return ir.InstrLoad
	default:
		return ir.Load
	}
}

func storeOp(byte_, instrumented bool) ir.Op {
	switch {
	case byte_ && instrumented:
		return ir.InstrStoreB
	case byte_:
		return ir.StoreB
	case instrumented:
		return ir.InstrStore
	default:
		return ir.Store
	}
}
