package translate

import (
	"fmt"
	"strings"
	"testing"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/ir"
)

// fetchFrom builds a FetchFunc over an assembled image.
func fetchFrom(im *asm.Image) FetchFunc {
	return func(pc uint32) (uint32, error) {
		idx := (pc - im.Org) / arch.WordBytes
		if pc < im.Org || int(idx) >= len(im.Words) {
			return 0, fmt.Errorf("fetch out of image: %#x", pc)
		}
		return im.Words[idx], nil
	}
}

func mustAssemble(t *testing.T, src string) *asm.Image {
	t.Helper()
	im, err := asm.Assemble(".org 0x1000\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func translate(t *testing.T, src string, opts Options) *ir.Block {
	t.Helper()
	im := mustAssemble(t, src)
	b, err := Block(fetchFrom(im), im.Org, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatalf("translated block fails verify: %v\n%s", err, b)
	}
	return b
}

func ops(b *ir.Block) []ir.Op {
	out := make([]ir.Op, len(b.Ops))
	for i, in := range b.Ops {
		out[i] = in.Op
	}
	return out
}

func hasOp(b *ir.Block, op ir.Op) bool {
	for _, in := range b.Ops {
		if in.Op == op {
			return true
		}
	}
	return false
}

func TestStraightLineBlock(t *testing.T) {
	b := translate(t, `
    movi r0, #5
    addi r1, r0, #3
    hlt
`, Options{})
	if b.GuestLen != 3 {
		t.Errorf("GuestLen = %d", b.GuestLen)
	}
	got := ops(b)
	want := []ir.Op{ir.MovI, ir.AddI, ir.Halt}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBlockEndsAtBranch(t *testing.T) {
	b := translate(t, `
loop:
    subsi r0, r0, #1
    bne loop
    hlt
`, Options{})
	if b.GuestLen != 2 {
		t.Errorf("block should end at the branch, GuestLen = %d", b.GuestLen)
	}
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.ExitCond || last.Cond != arch.NE {
		t.Fatalf("terminator = %s", last)
	}
	if last.Addr != 0x1000 || last.Addr2 != 0x1008 {
		t.Errorf("targets = %#x / %#x", last.Addr, last.Addr2)
	}
}

func TestUnconditionalBranch(t *testing.T) {
	b := translate(t, "top:\n b top", Options{})
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.ExitJmp || last.Addr != 0x1000 {
		t.Fatalf("terminator = %s", last)
	}
}

func TestBLWritesLinkRegister(t *testing.T) {
	b := translate(t, "f:\n bl f", Options{})
	if len(b.Ops) != 2 {
		t.Fatalf("ops:\n%s", b)
	}
	if b.Ops[0].Op != ir.MovI || b.Ops[0].D != ir.RegID(arch.LR) || b.Ops[0].Imm != 0x1004 {
		t.Errorf("lr setup = %s", b.Ops[0])
	}
	if b.Ops[1].Op != ir.ExitJmp || b.Ops[1].Addr != 0x1000 {
		t.Errorf("jump = %s", b.Ops[1])
	}
}

func TestBXIndirect(t *testing.T) {
	b := translate(t, "bx lr", Options{})
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.ExitInd || last.A != ir.RegID(arch.LR) {
		t.Fatalf("terminator = %s", last)
	}
}

func TestSyscallCarriesNumberAndResume(t *testing.T) {
	b := translate(t, "svc #7\n nop", Options{})
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.Syscall || last.Imm != 7 || last.Addr != 0x1004 {
		t.Fatalf("terminator = %s", last)
	}
}

func TestStoreInstrumentationToggle(t *testing.T) {
	src := "str r0, [r1, #4]\n strb r0, [r1]\n hlt"
	plain := translate(t, src, Options{})
	if !hasOp(plain, ir.Store) || !hasOp(plain, ir.StoreB) {
		t.Errorf("uninstrumented ops missing:\n%s", plain)
	}
	if hasOp(plain, ir.InstrStore) || hasOp(plain, ir.InstrStoreB) {
		t.Errorf("unexpected instrumentation:\n%s", plain)
	}
	instr := translate(t, src, Options{InstrumentStores: true})
	if !hasOp(instr, ir.InstrStore) || !hasOp(instr, ir.InstrStoreB) {
		t.Errorf("instrumented ops missing:\n%s", instr)
	}
	if hasOp(instr, ir.Store) || hasOp(instr, ir.StoreB) {
		t.Errorf("plain stores escaped instrumentation:\n%s", instr)
	}
}

func TestLoadInstrumentationToggle(t *testing.T) {
	src := "ldr r0, [r1, #4]\n ldrb r0, [r1]\n ldrr r2, [r3, r4]\n hlt"
	plain := translate(t, src, Options{})
	if hasOp(plain, ir.InstrLoad) || hasOp(plain, ir.InstrLoadB) {
		t.Errorf("unexpected load instrumentation:\n%s", plain)
	}
	instr := translate(t, src, Options{InstrumentLoads: true})
	if !hasOp(instr, ir.InstrLoad) || !hasOp(instr, ir.InstrLoadB) {
		t.Errorf("instrumented loads missing:\n%s", instr)
	}
	if hasOp(instr, ir.Load) || hasOp(instr, ir.LoadB) {
		t.Errorf("plain loads escaped instrumentation:\n%s", instr)
	}
}

func TestLLSCAlwaysRouteThroughScheme(t *testing.T) {
	b := translate(t, "ldrex r0, [r1]\n strex r2, r0, [r1]\n clrex\n dmb\n hlt", Options{})
	for _, want := range []ir.Op{ir.LL, ir.SC, ir.Clrex, ir.Fence} {
		if !hasOp(b, want) {
			t.Errorf("missing %v:\n%s", want, b)
		}
	}
	// SC operands: D=status, A=address, B=value.
	for _, in := range b.Ops {
		if in.Op == ir.SC {
			if in.D != 2 || in.A != 1 || in.B != 0 {
				t.Errorf("SC operands wrong: %s", in)
			}
		}
	}
}

func TestRegisterOffsetAddressing(t *testing.T) {
	b := translate(t, "strr r0, [r1, r2]\n hlt", Options{InstrumentStores: true})
	// add temp = r1+r2; instrstore [temp] = r0.
	if len(b.Ops) != 3 || b.Ops[0].Op != ir.Add || b.Ops[1].Op != ir.InstrStore {
		t.Fatalf("ops:\n%s", b)
	}
	if b.Ops[1].A != b.Ops[0].D {
		t.Error("store must address through the computed temp")
	}
}

func TestMovtLowersToAndOr(t *testing.T) {
	b := translate(t, "movt r3, #0x1234\n hlt", Options{})
	if b.Ops[0].Op != ir.AndI || b.Ops[0].Imm != 0xffff {
		t.Errorf("op0 = %s", b.Ops[0])
	}
	if b.Ops[1].Op != ir.OrI || b.Ops[1].Imm != 0x1234<<16 {
		t.Errorf("op1 = %s", b.Ops[1])
	}
}

func TestRSBSwapsOperands(t *testing.T) {
	b := translate(t, "rsb r0, r1, r2\n hlt", Options{})
	if b.Ops[0].Op != ir.Sub || b.Ops[0].A != 2 || b.Ops[0].B != 1 {
		t.Fatalf("rsb lowered wrong: %s", b.Ops[0])
	}
}

func TestCmpUsesScratchTemp(t *testing.T) {
	b := translate(t, "cmp r1, r2\n hlt", Options{})
	if b.Ops[0].Op != ir.FlagsSub || b.Ops[0].D < ir.NumGuestRegs {
		t.Fatalf("cmp must target a temp: %s", b.Ops[0])
	}
}

func TestTstLowering(t *testing.T) {
	b := translate(t, "tst r1, r2\n hlt", Options{})
	if b.Ops[0].Op != ir.And || b.Ops[1].Op != ir.FlagsNZ {
		t.Fatalf("tst lowering:\n%s", b)
	}
}

func TestMaxGuestInstrsCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "addi r0, r0, #1\n")
	}
	sb.WriteString("hlt\n")
	b := translate(t, sb.String(), Options{MaxGuestInstrs: 8})
	if b.GuestLen != 8 {
		t.Errorf("GuestLen = %d, want 8", b.GuestLen)
	}
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.ExitJmp || last.Addr != 0x1000+8*4 {
		t.Errorf("cap terminator = %s", last)
	}
}

func TestNopOnlyBlockStillTerminates(t *testing.T) {
	b := translate(t, "nop\nnop\nnop", Options{MaxGuestInstrs: 3})
	if len(b.Ops) != 1 || b.Ops[0].Op != ir.ExitJmp {
		t.Fatalf("nop block:\n%s", b)
	}
}

func TestYieldTerminates(t *testing.T) {
	b := translate(t, "yield\n nop", Options{})
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.YieldOp || last.Addr != 0x1004 {
		t.Fatalf("yield terminator = %s", last)
	}
}

func TestOptimizeIntegration(t *testing.T) {
	// movw+movt through the optimizer folds into constants where possible.
	b := translate(t, `
    movw r0, #0x5678
    movt r0, #0x1234
    hlt
`, Options{Optimize: true})
	// After const folding the and/or chain collapses: r0 = movi 0x5678,
	// then andi+ori fold to a single movi 0x12345678.
	found := false
	for _, in := range b.Ops {
		if in.Op == ir.MovI && in.Imm == 0x12345678 && in.D == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("movw/movt did not fold:\n%s", b)
	}
}

func TestFetchErrorFirstInstruction(t *testing.T) {
	_, err := Block(func(pc uint32) (uint32, error) {
		return 0, fmt.Errorf("unmapped")
	}, 0x1000, Options{})
	if err == nil {
		t.Fatal("expected fetch error")
	}
}

func TestFetchErrorMidBlockSplits(t *testing.T) {
	im := mustAssemble(t, "addi r0, r0, #1\n addi r0, r0, #2\n hlt")
	limit := im.Org + 8 // only first two instructions fetchable
	fetch := func(pc uint32) (uint32, error) {
		if pc >= limit {
			return 0, fmt.Errorf("unmapped")
		}
		return fetchFrom(im)(pc)
	}
	b, err := Block(fetch, im.Org, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.GuestLen != 2 {
		t.Errorf("GuestLen = %d, want 2", b.GuestLen)
	}
	last := b.Ops[len(b.Ops)-1]
	if last.Op != ir.ExitJmp || last.Addr != limit {
		t.Errorf("split terminator = %s", last)
	}
}

func TestUndecodableInstructionFails(t *testing.T) {
	fetch := func(pc uint32) (uint32, error) { return 0xff000000, nil }
	if _, err := Block(fetch, 0, Options{}); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestGuestPCAnnotations(t *testing.T) {
	b := translate(t, "movi r0, #1\n movi r1, #2\n hlt", Options{})
	if b.Ops[0].GuestPC != 0x1000 || b.Ops[1].GuestPC != 0x1004 || b.Ops[2].GuestPC != 0x1008 {
		t.Errorf("GuestPC annotations: %#x %#x %#x",
			b.Ops[0].GuestPC, b.Ops[1].GuestPC, b.Ops[2].GuestPC)
	}
}
