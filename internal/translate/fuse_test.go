package translate

import (
	"testing"

	"atomemu/internal/ir"
)

func fuseOpts() Options { return Options{FuseAtomics: true, InstrumentStores: true} }

func countOp(b *ir.Block, op ir.Op) int {
	n := 0
	for _, in := range b.Ops {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestFuseAtomicAddImmediate(t *testing.T) {
	b := translate(t, `
retry:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne retry
    hlt
`, fuseOpts())
	if countOp(b, ir.AtomicRMW) != 1 {
		t.Fatalf("expected one fused RMW:\n%s", b)
	}
	if countOp(b, ir.LL) != 0 || countOp(b, ir.SC) != 0 {
		t.Fatalf("LL/SC should be gone:\n%s", b)
	}
	var rmw *ir.Inst
	for i := range b.Ops {
		if b.Ops[i].Op == ir.AtomicRMW {
			rmw = &b.Ops[i]
		}
	}
	if rmw.RMW != ir.RMWAdd || !rmw.RMWImm || rmw.Imm != 1 {
		t.Fatalf("rmw = %s", rmw)
	}
	// The whole loop (5 instrs) plus hlt were consumed into one block.
	if b.GuestLen != 6 {
		t.Errorf("GuestLen = %d, want 6", b.GuestLen)
	}
}

func TestFuseAtomicOpsRegisterVariants(t *testing.T) {
	for _, mn := range []string{"add", "sub", "and", "orr", "eor"} {
		src := `
retry:
    ldrex r1, [r4]
    ` + mn + ` r3, r1, r5
    strex r2, r3, [r4]
    cmpi r2, #0
    bne retry
    hlt
`
		b := translate(t, src, fuseOpts())
		if countOp(b, ir.AtomicRMW) != 1 {
			t.Errorf("%s: not fused:\n%s", mn, b)
		}
	}
}

func TestFuseExchange(t *testing.T) {
	b := translate(t, `
retry:
    ldrex r1, [r4]
    strex r2, r5, [r4]
    cmpi r2, #0
    bne retry
    hlt
`, fuseOpts())
	if countOp(b, ir.AtomicRMW) != 1 {
		t.Fatalf("xchg not fused:\n%s", b)
	}
	for _, in := range b.Ops {
		if in.Op == ir.AtomicRMW && in.RMW != ir.RMWXchg {
			t.Fatalf("kind = %v", in.RMW)
		}
	}
}

func TestNoFuseWhenDisabled(t *testing.T) {
	b := translate(t, `
retry:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne retry
    hlt
`, Options{})
	if countOp(b, ir.AtomicRMW) != 0 {
		t.Fatal("fusion must be opt-in")
	}
}

func TestNoFuseOnNonPatterns(t *testing.T) {
	cases := map[string]string{
		"branch inside window": `
retry:
    ldrex r1, [r4]
    cmpi r1, #0
    bne retry
    strex r2, r1, [r4]
    hlt`,
		"operand not loop-invariant": `
retry:
    ldrex r1, [r4]
    add r1, r1, r1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne retry
    hlt`,
		"alu source is not the load": `
retry:
    ldrex r1, [r4]
    addi r3, r5, #1
    strex r2, r3, [r4]
    cmpi r2, #0
    bne retry
    hlt`,
		"different strex address": `
retry:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r6]
    cmpi r2, #0
    bne retry
    hlt`,
		"branch to wrong target": `
top:
    nop
retry:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne top
    hlt`,
		"compares wrong register": `
retry:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r1, #0
    bne retry
    hlt`,
		"address clobbered by load": `
retry:
    ldrex r4, [r4]
    addi r1, r4, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne retry
    hlt`,
	}
	for name, src := range cases {
		b := translate(t, src, fuseOpts())
		if countOp(b, ir.AtomicRMW) != 0 {
			t.Errorf("%s: must not fuse:\n%s", name, b)
		}
	}
}

func TestFusedBlockVerifies(t *testing.T) {
	b := translate(t, `
retry:
    ldrex r1, [r4]
    sub r3, r1, r5
    strex r2, r3, [r4]
    cmpi r2, #0
    bne retry
    bx lr
`, fuseOpts())
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	// The fused sequence must set the architectural leftovers: rS = 0
	// (MovI to r2) and the flags of "cmpi rS, #0".
	foundRS, foundFlags := false, false
	for _, in := range b.Ops {
		if in.Op == ir.MovI && in.D == 2 && in.Imm == 0 {
			foundRS = true
		}
		if in.Op == ir.FlagsSubI && in.Imm == 0 {
			foundFlags = true
		}
	}
	if !foundRS || !foundFlags {
		t.Fatalf("architectural leftovers missing (rS=%v flags=%v):\n%s", foundRS, foundFlags, b)
	}
}
