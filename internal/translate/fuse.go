package translate

import (
	"atomemu/internal/arch"
	"atomemu/internal/ir"
)

// Rule-based code translation (paper §VI): compilers emit LL/SC in a fixed
// retry-loop shape —
//
//	L: ldrex  rT, [rA]
//	   add    rN, rT, rM      ; or sub/and/orr/eor, register or immediate
//	   strex  rS, rN, [rA]
//	   cmpi   rS, #0
//	   bne    L
//
// (or the exchange shape without the ALU op). When recognized, the whole
// loop is replaced by one fused AtomicRMW executed as a host atomic builtin:
// no per-iteration emulation, no store-test participation, and ABA-free by
// construction — a read-modify-write never mistakes "same value" for
// "nothing happened".
//
// The fused lowering reproduces the architectural state the loop leaves
// behind: rT = the old value of the final (successful) attempt, rN = the
// stored value, rS = 0, and NZCV as set by "cmpi rS, #0".

var rmwRegOps = map[arch.Opcode]ir.RMWKind{
	arch.ADD: ir.RMWAdd, arch.SUB: ir.RMWSub, arch.AND: ir.RMWAnd,
	arch.ORR: ir.RMWOr, arch.EOR: ir.RMWXor,
}

var rmwImmOps = map[arch.Opcode]ir.RMWKind{
	arch.ADDI: ir.RMWAdd, arch.SUBI: ir.RMWSub, arch.ANDI: ir.RMWAnd,
	arch.ORRI: ir.RMWOr, arch.EORI: ir.RMWXor,
}

// tryFuse attempts to recognize an atomic retry loop whose LDREX sits at pc.
// On success it emits the fused IR and returns the number of guest
// instructions consumed; 0 means no match (translate normally).
func tryFuse(fetch FetchFunc, b *ir.Block, ll arch.Instruction, pc uint32, opts Options) int {
	// Look ahead up to four instructions; any fetch/decode problem simply
	// declines the fusion.
	var win [4]arch.Instruction
	n := 0
	for ; n < 4; n++ {
		w, err := fetch(pc + uint32(n+1)*arch.InstrBytes)
		if err != nil {
			break
		}
		in, err := arch.Decode(w)
		if err != nil {
			break
		}
		win[n] = in
	}
	rT, rA := ll.Rd, ll.Rn
	if rT == rA {
		return 0 // the loop would clobber its own address register
	}

	// Exchange shape: strex rS, rB, [rA]; cmpi rS, #0; bne L.
	if n >= 3 && win[0].Op == arch.STREX {
		st, cmp, br := win[0], win[1], win[2]
		rS, rB := st.Rd, st.Rm
		if st.Rn == rA && rB != rT && rB != rS && rB != rA &&
			distinct(rS, rT, rA) &&
			cmp.Op == arch.CMPI && cmp.Rn == rS && cmp.Imm == 0 &&
			isLoopBack(br, pc+3*arch.InstrBytes, pc) {
			emitFused(b, pc, ir.Inst{
				Op: ir.AtomicRMW, D: ir.RegID(rT), A: ir.RegID(rA),
				B: ir.RegID(rB), RMW: ir.RMWXchg,
			}, nil, rS)
			return 4
		}
		return 0
	}

	// RMW shape: alu; strex; cmpi; bne.
	if n < 4 || win[1].Op != arch.STREX {
		return 0
	}
	alu, st, cmp, br := win[0], win[1], win[2], win[3]
	rN, rS := alu.Rd, st.Rd
	kind, isReg := rmwRegOps[alu.Op]
	kindI, isImm := rmwImmOps[alu.Op]
	if !isReg && !isImm {
		return 0
	}
	if alu.Rn != rT {
		return 0 // the new value must be derived from the loaded one
	}
	if isReg {
		rM := alu.Rm
		// The operand must be loop-invariant: not any register the loop
		// writes.
		if rM == rT || rM == rN || rM == rS {
			return 0
		}
	}
	if st.Rn != rA || st.Rm != rN {
		return 0
	}
	if !distinct(rS, rT, rA) || rS == rN || rA == rN {
		return 0
	}
	if cmp.Op != arch.CMPI || cmp.Rn != rS || cmp.Imm != 0 {
		return 0
	}
	if !isLoopBack(br, pc+4*arch.InstrBytes, pc) {
		return 0
	}

	rmw := ir.Inst{Op: ir.AtomicRMW, D: ir.RegID(rT), A: ir.RegID(rA)}
	var recompute *ir.Inst
	if isReg {
		rmw.B = ir.RegID(alu.Rm)
		rmw.RMW = kind
		recompute = &ir.Inst{Op: aluIROps[alu.Op], D: ir.RegID(rN), A: ir.RegID(rT), B: ir.RegID(alu.Rm)}
	} else {
		rmw.Imm = uint32(alu.Imm)
		rmw.RMWImm = true
		rmw.RMW = kindI
		recompute = &ir.Inst{Op: aluImmIROps[alu.Op], D: ir.RegID(rN), A: ir.RegID(rT), Imm: uint32(alu.Imm)}
	}
	emitFused(b, pc, rmw, recompute, rS)
	return 5
}

var aluIROps = map[arch.Opcode]ir.Op{
	arch.ADD: ir.Add, arch.SUB: ir.Sub, arch.AND: ir.And,
	arch.ORR: ir.Or, arch.EOR: ir.Xor,
}

var aluImmIROps = map[arch.Opcode]ir.Op{
	arch.ADDI: ir.AddI, arch.SUBI: ir.SubI, arch.ANDI: ir.AndI,
	arch.ORRI: ir.OrI, arch.EORI: ir.XorI,
}

func distinct(a, b, c arch.Reg) bool { return a != b && a != c && b != c }

// isLoopBack reports whether in is "bne target" sitting at pc.
func isLoopBack(in arch.Instruction, pc, target uint32) bool {
	return in.Op == arch.B && in.Cond == arch.NE && in.BranchTarget(pc) == target
}

// emitFused writes the fused sequence: the RMW, the recomputation of the
// stored value (nil for exchange), rS = 0, and the flags of "cmpi rS, #0".
func emitFused(b *ir.Block, pc uint32, rmw ir.Inst, recompute *ir.Inst, rS arch.Reg) {
	rmw.GuestPC = pc
	b.Emit(rmw)
	if recompute != nil {
		recompute.GuestPC = pc
		b.Emit(*recompute)
	}
	b.Emit(ir.Inst{Op: ir.MovI, D: ir.RegID(rS), Imm: 0, GuestPC: pc})
	b.Emit(ir.Inst{Op: ir.FlagsSubI, D: b.Temp(), A: ir.RegID(rS), Imm: 0, GuestPC: pc})
}
