package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteJSONL writes events one-JSON-object-per-line, the format behind
// `atomemu -trace out.jsonl`. Events should already be in the order the
// caller wants (engine.Machine.TraceEvents returns them VT-sorted).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, `{"vt":%d,"tid":%d,"kind":%q,"addr":%d,"arg":%d`,
			e.VT, e.TID, e.Kind.String(), e.Addr, e.Arg); err != nil {
			return err
		}
		if e.Kind == EvSCFail {
			if _, err := fmt.Fprintf(bw, `,"reason":%q`, SCReasonString(e.Arg)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace renders events as a Chrome trace-event JSON array
// (load in chrome://tracing or Perfetto). Exclusive sections become
// duration ("B"/"E") slices; everything else is an instant ("i") event.
// Virtual cycles are mapped 1:1 onto trace microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, a ...any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(bw, format, a...)
		return err
	}
	for _, e := range events {
		var err error
		switch e.Kind {
		case EvExclEnter:
			err = emit(`{"name":"exclusive","ph":"B","ts":%d,"pid":1,"tid":%d}`, e.VT, e.TID)
		case EvExclExit:
			err = emit(`{"name":"exclusive","ph":"E","ts":%d,"pid":1,"tid":%d}`, e.VT, e.TID)
		case EvSCFail:
			err = emit(`{"name":"sc_fail","ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,"args":{"addr":%d,"reason":%q}}`,
				e.VT, e.TID, e.Addr, SCReasonString(e.Arg))
		default:
			err = emit(`{"name":%q,"ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,"args":{"addr":%d,"arg":%d}}`,
				e.Kind.String(), e.VT, e.TID, e.Addr, e.Arg)
		}
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
