package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRingOrderAndWrap(t *testing.T) {
	var clock atomic.Uint64
	r := NewRing(3, 4, &clock) // 16 slots
	for i := 0; i < 40; i++ {
		clock.Store(uint64(100 + i))
		r.Emit(EvLL, uint32(i), 0)
	}
	if got := r.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	if got := r.Dropped(); got != 24 {
		t.Fatalf("Dropped = %d, want 24", got)
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("Events len = %d, want 16", len(evs))
	}
	for i, e := range evs {
		wantAddr := uint32(24 + i)
		if e.Addr != wantAddr || e.VT != uint64(124+i) || e.TID != 3 {
			t.Fatalf("event %d = %+v, want addr=%d vt=%d tid=3", i, e, wantAddr, 124+i)
		}
		if i > 0 && evs[i].VT < evs[i-1].VT {
			t.Fatalf("events out of order at %d: %d < %d", i, evs[i].VT, evs[i-1].VT)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(0, 6, nil)
	r.EmitAt(5, EvCheckpoint, 0, 7)
	r.EmitAt(9, EvRestore, 0, 1)
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != EvCheckpoint || evs[1].Kind != EvRestore {
		t.Fatalf("Events = %+v", evs)
	}
	if evs[0].VT != 5 || evs[1].VT != 9 {
		t.Fatalf("VTs = %d,%d want 5,9", evs[0].VT, evs[1].VT)
	}
}

func TestNilRingSafe(t *testing.T) {
	var r *Ring
	r.Emit(EvLL, 1, 2)
	r.EmitAt(3, EvSCOk, 1, 2)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil ring must be inert")
	}
}

func TestKindAndReasonNames(t *testing.T) {
	for k := EvNone; k <= EvRestore; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
	for r := SCNoMonitor; r <= SCTxnDoomed; r++ {
		if SCReasonString(r) == "unknown" {
			t.Fatalf("sc reason %d has no name", r)
		}
	}
	if SCReasonString(0) != "unknown" || SCReasonString(99) != "unknown" {
		t.Fatal("unnamed reasons should be unknown")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	want := []uint64{2, 3, 4, 5} // cumulative: <=1, <=10, <=100, +Inf
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Sum != 556.2 {
		t.Fatalf("Sum = %v, want 556.2", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	s := h.Snapshot()
	if s.Count != 4000 || s.Buckets[1] != 4000 || s.Sum != 6000 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestWriteJSONL(t *testing.T) {
	events := []Event{
		{VT: 10, TID: 1, Kind: EvLL, Addr: 0x400},
		{VT: 20, TID: 2, Kind: EvSCFail, Addr: 0x400, Arg: SCHashStolen},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	if !strings.Contains(lines[1], `"reason":"hash_stolen"`) {
		t.Fatalf("sc_fail line missing reason: %q", lines[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{VT: 10, TID: 1, Kind: EvExclEnter},
		{VT: 12, TID: 1, Kind: EvSCFail, Addr: 0x400, Arg: SCNoMonitor},
		{VT: 15, TID: 1, Kind: EvExclExit},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(arr) != 3 {
		t.Fatalf("got %d entries, want 3", len(arr))
	}
	if arr[0]["ph"] != "B" || arr[2]["ph"] != "E" {
		t.Fatalf("exclusive section not rendered as B/E: %v", arr)
	}
}

// BenchmarkNilEmit measures the disabled-path cost of an emit site: one
// nil check. The perf guard in internal/engine asserts this stays within
// noise.
func BenchmarkNilEmit(b *testing.B) {
	var r *Ring
	for i := 0; i < b.N; i++ {
		r.Emit(EvSCOk, uint32(i), 0)
	}
}
