package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free latency histogram matching the
// Prometheus data model: cumulative _bucket counts per upper bound, a
// _sum of observations, and a _count. Observe is safe for concurrent
// use; Snapshot is consistent enough for scrapes (counts are monotonic,
// sum may trail by in-flight observations).
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram makes a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := len(h.bounds)
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time view of a Histogram, with Prometheus
// cumulative bucket semantics already applied.
type HistSnapshot struct {
	Bounds  []float64 // upper bounds, ascending (no +Inf entry)
	Buckets []uint64  // cumulative counts, len(Bounds)+1; last is the +Inf bucket
	Count   uint64
	Sum     float64
}

// Snapshot returns cumulative bucket counts suitable for exposition.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	return s
}
