// Package obs is the engine's observability layer: a per-vCPU lock-free
// ring-buffer event tracer, Prometheus-style histograms, and trace
// exporters (JSONL, Chrome trace-event).
//
// The tracer is designed so the disabled path costs one nil check: every
// emit site calls Emit on a possibly-nil *Ring, and Emit returns
// immediately on a nil receiver. When enabled, each vCPU owns its own
// Ring (single writer, no locks); the host reads rings only at
// quiescence (all vCPUs parked in the exclusive protocol, or after the
// machine has stopped), so no reader/writer synchronisation is needed
// beyond the atomic head counter.
package obs

import "sync/atomic"

// Kind identifies an event type in the trace stream.
type Kind uint8

// Event kinds. The numeric values are part of the JSONL export format;
// append only.
const (
	EvNone         Kind = iota
	EvLL                // load-linked established a monitor (Addr = guest address)
	EvSCOk              // store-conditional succeeded (Addr = guest address)
	EvSCFail            // store-conditional failed (Addr = guest address, Arg = SC failure reason)
	EvHashConflict      // HST monitor-table hash conflict (Addr = guest address)
	EvExclEnter         // vCPU entered an exclusive section
	EvExclExit          // vCPU left an exclusive section
	EvHTMAbort          // HTM transaction aborted (Arg = htm.AbortReason)
	EvHTMBackoff        // resilience layer charged an abort backoff (Arg = wait cycles)
	EvSchemeFall        // resilience layer demoted the scheme (Arg = streak length)
	EvWatchdogTrip      // SC watchdog tripped a stalled monitor (Addr = monitored address)
	EvCheckpoint        // checkpoint captured (Arg = pages copied)
	EvRestore           // checkpoint restored after a fault (Arg = snapshot sequence)
	EvTierPromote       // block promoted from interp tier to optimized IR (Addr = block start, Arg = exec count)
	EvChainLink         // chain link installed between two TBs (Addr = source block start, Arg = target pc)
)

var kindNames = [...]string{
	EvNone:         "none",
	EvLL:           "ll",
	EvSCOk:         "sc_ok",
	EvSCFail:       "sc_fail",
	EvHashConflict: "hash_conflict",
	EvExclEnter:    "excl_enter",
	EvExclExit:     "excl_exit",
	EvHTMAbort:     "htm_abort",
	EvHTMBackoff:   "htm_backoff",
	EvSchemeFall:   "scheme_fallback",
	EvWatchdogTrip: "watchdog_trip",
	EvCheckpoint:   "checkpoint",
	EvRestore:      "restore",
	EvTierPromote:  "tier_promote",
	EvChainLink:    "chain_link",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// SC failure reasons, carried in Event.Arg of an EvSCFail event. They
// refine stats.CPU.SCFails: the counter says how many SCs failed, the
// trace says why each one did.
const (
	SCNoMonitor     uint64 = iota + 1 // no active monitor (spurious SC, or cleared by interference)
	SCValueChanged                    // CAS observed a different value than the LL snapshot
	SCHashStolen                      // HST hash-table entry taken over by another vCPU
	SCLockStolen                      // HST-weak per-entry lock held by another vCPU
	SCMonitorBroken                   // monitor invalidated by a conflicting store
	SCPageGone                        // PST private page withdrawn before the SC
	SCTxnDoomed                       // HTM transaction doomed; SC completed on the fallback
)

var scReasonNames = [...]string{
	SCNoMonitor:     "no_monitor",
	SCValueChanged:  "value_changed",
	SCHashStolen:    "hash_stolen",
	SCLockStolen:    "lock_stolen",
	SCMonitorBroken: "monitor_broken",
	SCPageGone:      "page_gone",
	SCTxnDoomed:     "txn_doomed",
}

// SCReasonString names an SCFail reason code for human-readable exports.
func SCReasonString(r uint64) string {
	if r < uint64(len(scReasonNames)) && scReasonNames[r] != "" {
		return scReasonNames[r]
	}
	return "unknown"
}

// Event is one traced occurrence. 32 bytes, fixed layout, no pointers:
// a ring of 2^bits events costs exactly 32<<bits bytes and never keeps
// anything else alive.
type Event struct {
	VT   uint64 // virtual timestamp (cycles) when the event was emitted
	Arg  uint64 // kind-specific argument (reason code, wait cycles, ...)
	Addr uint32 // guest address, when the event has one
	TID  uint32 // emitting vCPU's thread id (0 = host)
	Kind Kind
}

// Ring is a single-writer, lock-free bounded event buffer. One vCPU
// writes; the host reads at quiescence. When full it overwrites the
// oldest events — tracing never blocks or fails, it just forgets the
// distant past.
//
// A nil *Ring is valid and inert: Emit, EmitAt, Events, Len and Dropped
// are all nil-safe, so call sites need no enabled-flag of their own.
type Ring struct {
	buf   []Event
	mask  uint64
	tid   uint32
	clock *atomic.Uint64 // the owning vCPU's virtual clock; nil for host rings
	head  atomic.Uint64  // total events ever emitted
}

// NewRing makes a ring of 2^bits events owned by vCPU tid. clock, when
// non-nil, supplies virtual timestamps for Emit; host-side rings pass
// nil and use EmitAt instead.
func NewRing(tid uint32, bits uint, clock *atomic.Uint64) *Ring {
	if bits < 4 {
		bits = 4
	}
	if bits > 24 {
		bits = 24
	}
	n := uint64(1) << bits
	return &Ring{buf: make([]Event, n), mask: n - 1, tid: tid, clock: clock}
}

// Emit records an event stamped with the owner's current virtual time.
// Nil-safe; single-writer only.
func (r *Ring) Emit(k Kind, addr uint32, arg uint64) {
	if r == nil {
		return
	}
	var vt uint64
	if r.clock != nil {
		vt = r.clock.Load()
	}
	r.emit(Event{VT: vt, Arg: arg, Addr: addr, TID: r.tid, Kind: k})
}

// EmitAt records an event with an explicit virtual timestamp. Used by
// host-side rings that have no vCPU clock. Nil-safe; single-writer only.
func (r *Ring) EmitAt(vt uint64, k Kind, addr uint32, arg uint64) {
	if r == nil {
		return
	}
	r.emit(Event{VT: vt, Arg: arg, Addr: addr, TID: r.tid, Kind: k})
}

func (r *Ring) emit(e Event) {
	h := r.head.Load()
	r.buf[h&r.mask] = e
	// Store after the slot write so a quiescent reader observing head=h+1
	// also observes the slot contents (release on this architecture; the
	// engine additionally only reads rings when the writer is parked).
	r.head.Store(h + 1)
}

// Len reports how many events are currently retained. Nil-safe.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	h := r.head.Load()
	if h > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(h)
}

// Dropped reports how many events were overwritten because the ring
// wrapped. Nil-safe.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	h := r.head.Load()
	if h > uint64(len(r.buf)) {
		return h - uint64(len(r.buf))
	}
	return 0
}

// Events returns the retained events oldest-first. Only valid at
// quiescence (the owning vCPU parked or exited); the result is a copy.
// Nil-safe.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	h := r.head.Load()
	n := h
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]Event, 0, n)
	for i := h - n; i < h; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}
