module atomemu

go 1.22
