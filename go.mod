module atomemu

go 1.23
