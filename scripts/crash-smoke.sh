#!/usr/bin/env bash
# Crash smoke test, run by the CI crash-smoke job and usable locally: build
# atomemud, start it durable (-data-dir), submit a keyed checkpointing job,
# wait for a checkpoint to hit the disk, SIGKILL the daemon mid-run, restart
# it over the same data directory, and require that the job survived — same
# id for the key, terminal "done" with the right output, and a replay that
# skipped no corrupt records.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
dpid=""
cleanup() {
    [ -n "$dpid" ] && kill -9 "$dpid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/atomemud" ./cmd/atomemud
ddir="$tmp/data"

start_daemon() { # $1 = log file
    "$tmp/atomemud" -addr 127.0.0.1:0 -workers 2 -drain-grace 2s \
        -data-dir "$ddir" -fsync always >"$1" 2>&1 &
    dpid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$1" | head -1)
        if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            return 0
        fi
        addr=""
        sleep 0.1
    done
    echo "FAIL: daemon never became ready"
    cat "$1"
    exit 1
}

metric() { # $1 = series name; prints its value (0 if absent)
    curl -fsS "http://$addr/metrics" | awk -v n="$1" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }'
}

start_daemon "$tmp/daemon1.log"
echo "durable daemon up on $addr (data in $ddir)"

# One keyed long job that checkpoints often: a million atomic increments.
counter_gac='var c; func main(n) { var i = 0; while (i < n) { atomic_add(&c, 1); i = i + 1; } print(c); exit(0); }'
id=$(curl -fsS "http://$addr/jobs" -d "{\"scheme\":\"pico-cas\",\"arg\":1000000,\"idempotency_key\":\"crash-smoke\",\"gac\":\"$counter_gac\",\"config\":{\"checkpoint_every\":5000}}" \
    | grep -o 'job-[0-9]*' | head -1)
[ -n "$id" ] || { echo "FAIL: no job id from submit"; exit 1; }
echo "submitted $id (key crash-smoke)"

# Wait for durable state worth killing over: at least one spilled checkpoint.
spilled=0
for _ in $(seq 1 200); do
    spilled=$(metric atomemu_ckpt_spill_total)
    [ "${spilled%.*}" -ge 1 ] 2>/dev/null && break
    sleep 0.05
done
[ "${spilled%.*}" -ge 1 ] || { echo "FAIL: no checkpoint spill before kill"; cat "$tmp/daemon1.log"; exit 1; }
records=$(metric atomemu_journal_records_total)
echo "checkpoint spilled (spills=$spilled journal_records=$records) — SIGKILL"

kill -9 "$dpid"
wait "$dpid" 2>/dev/null || true
dpid=""

start_daemon "$tmp/daemon2.log"
echo "daemon restarted on $addr"

# The acknowledged job must not be lost, and replay must be clean.
curl -fsS "http://$addr/jobs/$id" >/dev/null || { echo "FAIL: $id lost across SIGKILL"; exit 1; }
corrupt=$(metric atomemu_journal_corrupt_records_total)
[ "${corrupt%.*}" = "0" ] || { echo "FAIL: replay skipped $corrupt corrupt records"; exit 1; }
resumed=$(metric atomemu_restart_jobs_resumed_total)
requeued=$(metric atomemu_restart_jobs_requeued_total)
[ "${resumed%.*}" -ge 1 ] || { echo "FAIL: job did not resume from its checkpoint (resumed=$resumed requeued=$requeued)"; cat "$tmp/daemon2.log"; exit 1; }
echo "recovery ok (resumed=$resumed requeued=$requeued corrupt=$corrupt)"

# The idempotency key keeps answering the same id — no duplicate admission.
rid=$(curl -fsS "http://$addr/jobs" -d "{\"scheme\":\"pico-cas\",\"arg\":1000000,\"idempotency_key\":\"crash-smoke\",\"gac\":\"$counter_gac\",\"config\":{\"checkpoint_every\":5000}}" \
    | grep -o 'job-[0-9]*' | head -1)
[ "$rid" = "$id" ] || { echo "FAIL: key answered $rid after restart, want $id"; exit 1; }
echo "idempotent re-submit ok ($rid)"

# The resumed job must still produce the uninterrupted result.
body=""
for _ in $(seq 1 600); do
    body=$(curl -fsS "http://$addr/jobs/$id")
    case "$body" in
    *'"state":"done"'* | *'"state":"failed"'* | *'"state":"canceled"'*) break ;;
    esac
    sleep 0.1
done
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: resumed job: $body"; cat "$tmp/daemon2.log"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b1000000\b' || { echo "FAIL: resumed output: $body"; exit 1; }
echo "resumed job finished with the uninterrupted output"

kill -TERM "$dpid"
rc=0
wait "$dpid" || rc=$?
dpid=""
[ "$rc" = "0" ] || { echo "FAIL: daemon exited $rc after SIGTERM"; cat "$tmp/daemon2.log"; exit 1; }
echo "PASS"
