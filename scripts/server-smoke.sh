#!/usr/bin/env bash
# Server smoke test, run by the CI server-smoke job and usable locally:
# build atomemud, start it on an ephemeral port, submit PICO-CAS and HST
# jobs over HTTP, assert their results and the error path, then SIGTERM
# the daemon with a slow job in flight and require a clean (exit 0) drain.
# A second durable phase restarts the daemon over a -data-dir and asserts
# the journal_*/ckpt_spill_* metrics and job survival across the restart.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
dpid=""
cleanup() {
    [ -n "$dpid" ] && kill "$dpid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/atomemud" ./cmd/atomemud

"$tmp/atomemud" -addr 127.0.0.1:0 -workers 2 -drain-grace 2s >"$tmp/daemon.log" 2>&1 &
dpid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmp/daemon.log" | head -1)
    if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        break
    fi
    addr=""
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: daemon never became ready"
    cat "$tmp/daemon.log"
    exit 1
fi
echo "daemon up on $addr"

submit() {
    curl -fsS "http://$addr/jobs" -d "$1" | grep -o 'job-[0-9]*' | head -1
}

await() { # $1 = job id; prints the terminal status JSON
    local body
    for _ in $(seq 1 300); do
        body=$(curl -fsS "http://$addr/jobs/$1")
        case "$body" in
        *'"state":"done"'* | *'"state":"failed"'* | *'"state":"canceled"'*)
            echo "$body"
            return 0
            ;;
        esac
        sleep 0.1
    done
    echo "FAIL: job $1 never reached a terminal state" >&2
    return 1
}

counter_gac='var c; func main(n) { var i = 0; while (i < n) { atomic_add(&c, 1); i = i + 1; } print(c); exit(0); }'

# PICO-CAS job: 4 threads x 500 atomic increments; the last print is 2000.
cas_id=$(submit "{\"scheme\":\"pico-cas\",\"threads\":4,\"arg\":500,\"gac\":\"$counter_gac\"}")
body=$(await "$cas_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: pico-cas job: $body"; exit 1; }
echo "$body" | grep -q '"exit_code":0' || { echo "FAIL: pico-cas exit code: $body"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b2000\b' || { echo "FAIL: pico-cas output: $body"; exit 1; }
echo "pico-cas job ok ($cas_id)"

# HST job: single thread, same program.
hst_id=$(submit "{\"scheme\":\"hst\",\"arg\":100,\"gac\":\"$counter_gac\"}")
body=$(await "$hst_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: hst job: $body"; exit 1; }
echo "$body" | grep -q '"scheme_effective":"hst"' || { echo "FAIL: hst scheme: $body"; exit 1; }
echo "hst job ok ($hst_id)"

# /metrics: Prometheus text exposition. Both completed jobs must show in
# the counter, the hst histogram must have a +Inf bucket, and every
# non-comment line must match the exposition sample syntax.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^atomemu_jobs_completed_total 2$' \
    || { echo "FAIL: jobs_completed_total: $(echo "$metrics" | grep jobs_completed || true)"; exit 1; }
echo "$metrics" | grep -q '^atomemu_job_wall_seconds_bucket{scheme="hst",le="+Inf"} 1$' \
    || { echo "FAIL: missing hst wall histogram +Inf bucket"; exit 1; }
echo "$metrics" | grep -q '^atomemu_engine_scs_total [1-9]' \
    || { echo "FAIL: engine SC counter missing or zero"; exit 1; }
bad=$(echo "$metrics" | grep -v '^#' | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9.eE+-]+|[-+]?Inf|NaN)$' || true)
if [ -n "$bad" ]; then
    echo "FAIL: malformed exposition lines:"
    echo "$bad"
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/metrics")
[ "$code" = "405" ] || { echo "FAIL: POST /metrics returned $code, want 405"; exit 1; }
echo "metrics scrape ok ($(echo "$metrics" | grep -cv '^#') samples)"

# Admission must reject nonsense with 400.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/jobs" \
    -d '{"scheme":"qemu","gac":"func main(n) { exit(0); }"}')
[ "$code" = "400" ] || { echo "FAIL: bad scheme returned $code, want 400"; exit 1; }
echo "bad request rejected with 400"

# SIGTERM with a slow job in flight: the daemon must drain (cancelling the
# straggler after -drain-grace) and exit 0.
slow_id=$(submit '{"scheme":"hst","deadline_ms":60000,"gac":"var s; func main(n) { while (1) { s = s + 1; } }"}')
sleep 0.3
kill -TERM "$dpid"
rc=0
wait "$dpid" || rc=$?
dpid=""
if [ "$rc" != "0" ]; then
    echo "FAIL: daemon exited $rc after SIGTERM"
    cat "$tmp/daemon.log"
    exit 1
fi
grep -q "drained clean" "$tmp/daemon.log" || { echo "FAIL: no clean-drain log"; cat "$tmp/daemon.log"; exit 1; }
echo "SIGTERM drain ok (slow job $slow_id cancelled within grace)"

# --- durable phase: journal/spill metrics and survival across a restart ---

ddir="$tmp/data"
start_durable() { # $1 = log file
    "$tmp/atomemud" -addr 127.0.0.1:0 -workers 2 -drain-grace 2s -data-dir "$ddir" >"$1" 2>&1 &
    dpid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$1" | head -1)
        if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            return 0
        fi
        addr=""
        sleep 0.1
    done
    echo "FAIL: durable daemon never became ready"
    cat "$1"
    exit 1
}
metric() { # $1 = series name; prints its value (0 if absent)
    curl -fsS "http://$addr/metrics" | awk -v n="$1" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }'
}

start_durable "$tmp/durable1.log"
echo "durable daemon up on $addr"

dur_id=$(submit "{\"scheme\":\"pico-cas\",\"arg\":20000,\"idempotency_key\":\"smoke-key\",\"gac\":\"$counter_gac\",\"config\":{\"checkpoint_every\":2000}}")
body=$(await "$dur_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: durable job: $body"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b20000\b' || { echo "FAIL: durable output: $body"; exit 1; }

# The new durability series must be present and moving on a durable server.
[ "$(metric atomemu_journal_records_total | cut -d. -f1)" -ge 1 ] || { echo "FAIL: journal_records_total never advanced"; exit 1; }
[ "$(metric atomemu_ckpt_spill_total | cut -d. -f1)" -ge 1 ] || { echo "FAIL: ckpt_spill_total never advanced"; exit 1; }
[ "$(metric atomemu_ckpt_spill_errors_total | cut -d. -f1)" = "0" ] || { echo "FAIL: checkpoint spill errors"; exit 1; }
[ "$(metric atomemu_journal_errors_total | cut -d. -f1)" = "0" ] || { echo "FAIL: journal errors"; exit 1; }
echo "durability metrics ok (records=$(metric atomemu_journal_records_total) spills=$(metric atomemu_ckpt_spill_total))"

kill -TERM "$dpid"
rc=0
wait "$dpid" || rc=$?
dpid=""
[ "$rc" = "0" ] || { echo "FAIL: durable daemon exited $rc after SIGTERM"; cat "$tmp/durable1.log"; exit 1; }

start_durable "$tmp/durable2.log"
echo "durable daemon restarted on $addr"

# The finished job survives the restart with its result intact…
body=$(curl -fsS "http://$addr/jobs/$dur_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: job lost across restart: $body"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b20000\b' || { echo "FAIL: output lost across restart: $body"; exit 1; }
# …the replay metrics say so, cleanly…
[ "$(metric atomemu_journal_replayed_records_total | cut -d. -f1)" -ge 1 ] || { echo "FAIL: nothing replayed after restart"; exit 1; }
[ "$(metric atomemu_restart_jobs_terminal_total | cut -d. -f1)" -ge 1 ] || { echo "FAIL: terminal job not re-registered"; exit 1; }
[ "$(metric atomemu_journal_corrupt_records_total | cut -d. -f1)" = "0" ] || { echo "FAIL: corrupt records in a clean restart"; exit 1; }
# …and the idempotency key still answers the original id.
rid=$(submit "{\"scheme\":\"pico-cas\",\"arg\":20000,\"idempotency_key\":\"smoke-key\",\"gac\":\"$counter_gac\",\"config\":{\"checkpoint_every\":2000}}")
[ "$rid" = "$dur_id" ] || { echo "FAIL: key answered $rid after restart, want $dur_id"; exit 1; }
echo "restart recovery ok ($dur_id survived, key idempotent)"

kill -TERM "$dpid"
rc=0
wait "$dpid" || rc=$?
dpid=""
[ "$rc" = "0" ] || { echo "FAIL: durable daemon exited $rc on final SIGTERM"; cat "$tmp/durable2.log"; exit 1; }
echo "PASS"
