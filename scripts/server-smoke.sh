#!/usr/bin/env bash
# Server smoke test, run by the CI server-smoke job and usable locally:
# build atomemud, start it on an ephemeral port, submit PICO-CAS and HST
# jobs over HTTP, assert their results and the error path, then SIGTERM
# the daemon with a slow job in flight and require a clean (exit 0) drain.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
dpid=""
cleanup() {
    [ -n "$dpid" ] && kill "$dpid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/atomemud" ./cmd/atomemud

"$tmp/atomemud" -addr 127.0.0.1:0 -workers 2 -drain-grace 2s >"$tmp/daemon.log" 2>&1 &
dpid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmp/daemon.log" | head -1)
    if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        break
    fi
    addr=""
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: daemon never became ready"
    cat "$tmp/daemon.log"
    exit 1
fi
echo "daemon up on $addr"

submit() {
    curl -fsS "http://$addr/jobs" -d "$1" | grep -o 'job-[0-9]*' | head -1
}

await() { # $1 = job id; prints the terminal status JSON
    local body
    for _ in $(seq 1 300); do
        body=$(curl -fsS "http://$addr/jobs/$1")
        case "$body" in
        *'"state":"done"'* | *'"state":"failed"'* | *'"state":"canceled"'*)
            echo "$body"
            return 0
            ;;
        esac
        sleep 0.1
    done
    echo "FAIL: job $1 never reached a terminal state" >&2
    return 1
}

counter_gac='var c; func main(n) { var i = 0; while (i < n) { atomic_add(&c, 1); i = i + 1; } print(c); exit(0); }'

# PICO-CAS job: 4 threads x 500 atomic increments; the last print is 2000.
cas_id=$(submit "{\"scheme\":\"pico-cas\",\"threads\":4,\"arg\":500,\"gac\":\"$counter_gac\"}")
body=$(await "$cas_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: pico-cas job: $body"; exit 1; }
echo "$body" | grep -q '"exit_code":0' || { echo "FAIL: pico-cas exit code: $body"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b2000\b' || { echo "FAIL: pico-cas output: $body"; exit 1; }
echo "pico-cas job ok ($cas_id)"

# HST job: single thread, same program.
hst_id=$(submit "{\"scheme\":\"hst\",\"arg\":100,\"gac\":\"$counter_gac\"}")
body=$(await "$hst_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: hst job: $body"; exit 1; }
echo "$body" | grep -q '"scheme_effective":"hst"' || { echo "FAIL: hst scheme: $body"; exit 1; }
echo "hst job ok ($hst_id)"

# /metrics: Prometheus text exposition. Both completed jobs must show in
# the counter, the hst histogram must have a +Inf bucket, and every
# non-comment line must match the exposition sample syntax.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^atomemu_jobs_completed_total 2$' \
    || { echo "FAIL: jobs_completed_total: $(echo "$metrics" | grep jobs_completed || true)"; exit 1; }
echo "$metrics" | grep -q '^atomemu_job_wall_seconds_bucket{scheme="hst",le="+Inf"} 1$' \
    || { echo "FAIL: missing hst wall histogram +Inf bucket"; exit 1; }
echo "$metrics" | grep -q '^atomemu_engine_scs_total [1-9]' \
    || { echo "FAIL: engine SC counter missing or zero"; exit 1; }
bad=$(echo "$metrics" | grep -v '^#' | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9.eE+-]+|[-+]?Inf|NaN)$' || true)
if [ -n "$bad" ]; then
    echo "FAIL: malformed exposition lines:"
    echo "$bad"
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/metrics")
[ "$code" = "405" ] || { echo "FAIL: POST /metrics returned $code, want 405"; exit 1; }
echo "metrics scrape ok ($(echo "$metrics" | grep -cv '^#') samples)"

# Admission must reject nonsense with 400.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/jobs" \
    -d '{"scheme":"qemu","gac":"func main(n) { exit(0); }"}')
[ "$code" = "400" ] || { echo "FAIL: bad scheme returned $code, want 400"; exit 1; }
echo "bad request rejected with 400"

# SIGTERM with a slow job in flight: the daemon must drain (cancelling the
# straggler after -drain-grace) and exit 0.
slow_id=$(submit '{"scheme":"hst","deadline_ms":60000,"gac":"var s; func main(n) { while (1) { s = s + 1; } }"}')
sleep 0.3
kill -TERM "$dpid"
rc=0
wait "$dpid" || rc=$?
dpid=""
if [ "$rc" != "0" ]; then
    echo "FAIL: daemon exited $rc after SIGTERM"
    cat "$tmp/daemon.log"
    exit 1
fi
grep -q "drained clean" "$tmp/daemon.log" || { echo "FAIL: no clean-drain log"; cat "$tmp/daemon.log"; exit 1; }
echo "SIGTERM drain ok (slow job $slow_id cancelled within grace)"
echo "PASS"
