#!/usr/bin/env bash
# Fabric smoke test, run by the CI fabric-smoke job and usable locally:
# build atomemud and atomemu-router, start a router over two workers,
# route keyed jobs through it, SIGKILL one worker mid-job, and require
# the router to detect the death (health machine + ring eviction), fail
# the stranded work over to the survivor, and finish every job with the
# right output. Also asserts the per-tenant quota path (429 + Retry-After)
# and the router's Prometheus exposition: per-worker health, failover and
# per-tenant series.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
w1pid=""
w2pid=""
rpid=""
cleanup() {
    for p in "$rpid" "$w1pid" "$w2pid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/atomemud" ./cmd/atomemud
go build -o "$tmp/atomemu-router" ./cmd/atomemu-router

await_addr() { # $1 = log file; prints host:port once the daemon is up
    local a=""
    for _ in $(seq 1 100); do
        a=$(sed -n 's/.*listening on \([0-9.:]*\)[ ,].*/\1/p' "$1" | head -1)
        if [ -n "$a" ] && curl -fsS "http://$a/healthz" >/dev/null 2>&1; then
            echo "$a"
            return 0
        fi
        a=""
        sleep 0.1
    done
    return 1
}

"$tmp/atomemud" -addr 127.0.0.1:0 -workers 2 -drain-grace 2s >"$tmp/w1.log" 2>&1 &
w1pid=$!
"$tmp/atomemud" -addr 127.0.0.1:0 -workers 2 -drain-grace 2s >"$tmp/w2.log" 2>&1 &
w2pid=$!
w1=$(await_addr "$tmp/w1.log") || { echo "FAIL: worker 1 never came up"; cat "$tmp/w1.log"; exit 1; }
w2=$(await_addr "$tmp/w2.log") || { echo "FAIL: worker 2 never came up"; cat "$tmp/w2.log"; exit 1; }
echo "workers up on $w1 and $w2"

"$tmp/atomemu-router" -addr 127.0.0.1:0 \
    -worker "http://$w1" -worker "http://$w2" \
    -quota-per-weight 4 \
    -probe-interval 100ms -down-after 2 -poll-interval 50ms \
    >"$tmp/router.log" 2>&1 &
rpid=$!
raddr=$(await_addr "$tmp/router.log") || { echo "FAIL: router never came up"; cat "$tmp/router.log"; exit 1; }
echo "router up on $raddr"

curl -fsS "http://$raddr/readyz" | grep -q '"status":"ready"' \
    || { echo "FAIL: router not ready with a live fleet"; exit 1; }

submit() { # $1 = request json; prints the router job id
    curl -fsS "http://$raddr/jobs" -d "$1" | grep -o 'fab-[0-9]*' | head -1
}

await_done() { # $1 = job id; prints the terminal view JSON
    local body
    for _ in $(seq 1 600); do
        body=$(curl -fsS "http://$raddr/jobs/$1")
        case "$body" in
        *'"state":"done"'* | *'"state":"failed"'* | *'"state":"shed"'*)
            echo "$body"
            return 0
            ;;
        esac
        sleep 0.1
    done
    echo "FAIL: job $1 never reached a terminal state" >&2
    return 1
}

milestone_gac='var t; func main(n) { var o = 0; var i = 0; while (o < n) { i = 0; while (i < 1000) { atomic_add(&t, 1); i = i + 1; } o = o + 1; print(t); } exit(0); }'

# Quick routed job: completes through the fabric, output intact.
quick_id=$(submit "{\"scheme\":\"pico-cas\",\"arg\":5,\"idempotency_key\":\"smoke-quick\",\"gac\":\"$milestone_gac\"}")
body=$(await_done "$quick_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: routed job: $body"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b5000\b' || { echo "FAIL: routed output: $body"; exit 1; }
# The key answers the same router id on re-submit.
rid=$(submit "{\"scheme\":\"pico-cas\",\"arg\":5,\"idempotency_key\":\"smoke-quick\",\"gac\":\"$milestone_gac\"}")
[ "$rid" = "$quick_id" ] || { echo "FAIL: key answered $rid, want $quick_id"; exit 1; }
echo "routed job ok ($quick_id, key idempotent)"

# Quota: a tenant at its live-job cap is shed with 429 + Retry-After.
codes=""
ra=""
for i in $(seq 1 6); do
    curl -s -D "$tmp/flood-hdr" -o /dev/null "http://$raddr/jobs" \
        -d "{\"scheme\":\"pico-cas\",\"arg\":500,\"tenant\":\"flood\",\"idempotency_key\":\"flood-$i\",\"gac\":\"$milestone_gac\",\"config\":{\"checkpoint_every\":5000}}"
    code=$(head -1 "$tmp/flood-hdr" | grep -o '[0-9][0-9][0-9]')
    codes="$codes $code"
    if [ "$code" = "429" ] && [ -z "$ra" ]; then
        ra=$(tr -d '\r' <"$tmp/flood-hdr" | sed -n 's/^Retry-After: //p')
    fi
done
echo "flood submit codes:$codes"
echo "$codes" | grep -q 429 || { echo "FAIL: flooding tenant was never shed with 429"; exit 1; }
[ -n "$ra" ] && [ "$ra" -ge 1 ] || { echo "FAIL: quota 429 carried Retry-After '$ra'"; exit 1; }
echo "tenant quota ok (429 with Retry-After $ra)"

# Long failover job: big enough to still be running when its worker dies.
long_id=$(submit "{\"scheme\":\"pico-cas\",\"arg\":2000,\"deadline_ms\":120000,\"idempotency_key\":\"smoke-long\",\"gac\":\"$milestone_gac\",\"config\":{\"checkpoint_every\":5000}}")
victim=""
for _ in $(seq 1 100); do
    body=$(curl -fsS "http://$raddr/jobs/$long_id")
    case "$body" in
    *'"state":"dispatched"'*)
        victim=$(echo "$body" | grep -o '"worker":"http://[0-9.:]*"' | cut -d'"' -f4)
        [ -n "$victim" ] && break
        ;;
    esac
    sleep 0.1
done
[ -n "$victim" ] || { echo "FAIL: long job never dispatched: $body"; exit 1; }
case "$victim" in
"http://$w1") vpid=$w1pid; survivor=$w2 ;;
"http://$w2") vpid=$w2pid; survivor=$w1 ;;
*) echo "FAIL: job dispatched to unknown worker $victim"; exit 1 ;;
esac
kill -KILL "$vpid"
wait "$vpid" 2>/dev/null || true
if [ "$vpid" = "$w1pid" ]; then w1pid=""; else w2pid=""; fi
echo "SIGKILLed $victim mid-job"

body=$(await_done "$long_id")
echo "$body" | grep -q '"state":"done"' || { echo "FAIL: failover job: $body"; cat "$tmp/router.log"; exit 1; }
echo "$body" | grep -q "\"worker\":\"http://$survivor\"" \
    || { echo "FAIL: job did not finish on the survivor: $body"; exit 1; }
echo "$body" | grep -Eq '"output":\[[^]]*\b2000000\b' || { echo "FAIL: failover output: $body"; exit 1; }
echo "failover ok ($long_id finished on $survivor)"

# Router metrics: per-worker health, failover counters, per-tenant series,
# and well-formed exposition lines.
metrics=$(curl -fsS "http://$raddr/metrics")
m() { # $1 = exact series (with labels); prints its value or 0
    echo "$metrics" | awk -v n="$1" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }'
}
[ "$(m "atomemu_router_worker_health{worker=\"$victim\"}")" = "2" ] \
    || { echo "FAIL: victim not reported down"; echo "$metrics" | grep worker_health; exit 1; }
[ "$(m "atomemu_router_worker_health{worker=\"http://$survivor\"}")" = "0" ] \
    || { echo "FAIL: survivor not reported healthy"; echo "$metrics" | grep worker_health; exit 1; }
[ "$(m atomemu_router_ring_workers)" = "1" ] || { echo "FAIL: ring_workers after eviction"; exit 1; }
[ "$(m "atomemu_router_worker_downs_total{worker=\"$victim\"}")" -ge 1 ] \
    || { echo "FAIL: no down transition recorded"; exit 1; }
[ "$(m atomemu_router_failover_redispatch_total | cut -d. -f1)" -ge 1 ] \
    || { echo "FAIL: failover_redispatch_total never advanced"; exit 1; }
echo "$metrics" | grep -q '^atomemu_router_tenant_admitted_total{tenant="flood"} ' \
    || { echo "FAIL: no per-tenant admitted series"; exit 1; }
echo "$metrics" | grep -q '^atomemu_router_tenant_shed_total{tenant="flood",reason="quota"} ' \
    || { echo "FAIL: no per-tenant quota-shed series"; exit 1; }
echo "$metrics" | grep -q '^atomemu_router_dispatch_wait_seconds_bucket{' \
    || { echo "FAIL: no dispatch-wait histogram"; exit 1; }
bad=$(echo "$metrics" | grep -v '^#' | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9.eE+-]+|[-+]?Inf|NaN)$' || true)
if [ -n "$bad" ]; then
    echo "FAIL: malformed exposition lines:"
    echo "$bad"
    exit 1
fi
echo "router metrics ok ($(echo "$metrics" | grep -cv '^#') samples)"

# Drain the admitted flood jobs so SIGTERM finds a quiet router, then
# require a clean drain-and-exit.
for i in $(seq 1 6); do
    id=$(curl -fsS "http://$raddr/jobs" \
        -d "{\"scheme\":\"pico-cas\",\"arg\":500,\"tenant\":\"flood\",\"idempotency_key\":\"flood-$i\",\"gac\":\"$milestone_gac\",\"config\":{\"checkpoint_every\":5000}}" \
        | grep -o 'fab-[0-9]*' | head -1 || true)
    [ -n "$id" ] && await_done "$id" >/dev/null
done
kill -TERM "$rpid"
rc=0
wait "$rpid" || rc=$?
rpid=""
[ "$rc" = "0" ] || { echo "FAIL: router exited $rc after SIGTERM"; cat "$tmp/router.log"; exit 1; }
echo "PASS"
