// Package atomemu's root benchmark suite: one testing.B benchmark per table
// and figure of the paper's evaluation. Wall time measures the harness
// itself; the paper's quantity — virtual time — is attached to every
// sub-benchmark as the "vcycles" metric, so
//
//	go test -bench=. -benchmem
//
// regenerates a compact version of the whole evaluation. cmd/atomemu-bench
// produces the full-size renders and CSVs.
package atomemu

import (
	"fmt"
	"testing"

	"atomemu/internal/core"
	"atomemu/internal/harness"
	"atomemu/internal/litmus"
	"atomemu/internal/stats"
	"atomemu/internal/workload"
)

// benchScale keeps -bench=. affordable; cmd/atomemu-bench defaults to 0.25.
const benchScale = 0.05

func runOnce(b *testing.B, prog, scheme string, threads int) *harness.RunResult {
	b.Helper()
	res, err := harness.RunWorkload(harness.RunConfig{
		Program: prog, Scheme: scheme, Threads: threads, Scale: benchScale,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig10Scalability covers the software schemes of Figure 10 on a
// threads sweep; the vcycles metric is the plotted quantity.
func BenchmarkFig10Scalability(b *testing.B) {
	for _, spec := range workload.ScalabilitySpecs() {
		for _, scheme := range harness.Fig10Schemes() {
			for _, threads := range []int{1, 4, 16} {
				name := fmt.Sprintf("%s/%s/t%d", spec.Name, scheme, threads)
				b.Run(name, func(b *testing.B) {
					var vt uint64
					for i := 0; i < b.N; i++ {
						res := runOnce(b, spec.Name, scheme, threads)
						vt = res.VirtualTime
					}
					b.ReportMetric(float64(vt), "vcycles")
				})
			}
		}
	}
}

// BenchmarkFig11HTM covers the HTM schemes; crashed runs (PICO-HTM
// livelock beyond 8 threads) report vcycles = 0.
func BenchmarkFig11HTM(b *testing.B) {
	for _, prog := range []string{"fluidanimate", "blackscholes"} {
		for _, scheme := range harness.Fig11Schemes() {
			for _, threads := range []int{1, 8, 16} {
				name := fmt.Sprintf("%s/%s/t%d", prog, scheme, threads)
				b.Run(name, func(b *testing.B) {
					var vt uint64
					crashed := false
					for i := 0; i < b.N; i++ {
						res := runOnce(b, prog, scheme, threads)
						vt = res.VirtualTime
						crashed = res.Crashed
					}
					if crashed {
						vt = 0
					}
					b.ReportMetric(float64(vt), "vcycles")
				})
			}
		}
	}
}

// BenchmarkFig12Breakdown reports the per-component cycle fractions of the
// overhead-breakdown figure as metrics.
func BenchmarkFig12Breakdown(b *testing.B) {
	remapOK := harness.PSTRemapPrograms()
	for _, prog := range []string{"fluidanimate", "bodytrack", "blackscholes"} {
		for _, scheme := range harness.Fig12Schemes() {
			if scheme == "pst-remap" && !remapOK[prog] {
				continue
			}
			b.Run(prog+"/"+scheme, func(b *testing.B) {
				var frac [stats.NumComponents]float64
				for i := 0; i < b.N; i++ {
					res := runOnce(b, prog, scheme, 8)
					frac = res.Stats.Breakdown()
				}
				b.ReportMetric(frac[stats.CompNative], "native")
				b.ReportMetric(frac[stats.CompExclusive], "excl")
				b.ReportMetric(frac[stats.CompInstrument], "instr")
				b.ReportMetric(frac[stats.CompMProtect], "mprot")
			})
		}
	}
}

// BenchmarkTableICensus reports the store:LL/SC ratio per program.
func BenchmarkTableICensus(b *testing.B) {
	for _, spec := range workload.Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, spec.Name, "hst", 2)
				ratio = res.Stats.StoreToLLSCRatio()
			}
			b.ReportMetric(ratio, "stores/llsc")
		})
	}
}

// BenchmarkTableIIRelative reports each scheme's virtual time relative to
// PICO-CAS on one representative program at 8 threads.
func BenchmarkTableIIRelative(b *testing.B) {
	base := runOnce(b, "freqmine", "pico-cas", 8).VirtualTime
	for _, scheme := range core.SchemeNames() {
		b.Run(scheme, func(b *testing.B) {
			var vt uint64
			crashed := false
			for i := 0; i < b.N; i++ {
				res := runOnce(b, "freqmine", scheme, 8)
				vt = res.VirtualTime
				crashed = res.Crashed
			}
			if crashed || vt == 0 {
				b.ReportMetric(0, "rel")
				return
			}
			b.ReportMetric(float64(vt)/float64(base), "rel")
		})
	}
}

// BenchmarkCorrectnessABA runs the §IV-A lock-free-stack audit per scheme
// and reports the corruption percentage (nonzero only for pico-cas).
func BenchmarkCorrectnessABA(b *testing.B) {
	for _, scheme := range core.SchemeNames() {
		b.Run(scheme, func(b *testing.B) {
			var pct float64
			for i := 0; i < b.N; i++ {
				run, err := harness.RunStack(scheme, 8, 40_000, 8)
				if err != nil {
					b.Fatal(err)
				}
				pct = run.CorruptPct
			}
			b.ReportMetric(pct, "corrupt%")
		})
	}
}

// BenchmarkLitmusMatrix measures the deterministic §IV-A sequence replay.
func BenchmarkLitmusMatrix(b *testing.B) {
	for _, scheme := range core.SchemeNames() {
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := litmus.RunAll(scheme); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
