// The paper's headline demonstration (§I, §IV-A): a Treiber lock-free stack
// written with LL/SC runs correctly on real ARM, but under QEMU-4.1's
// PICO-CAS translation the ABA interleaving of Figure 2 corrupts it within
// seconds. The same binary under HST survives.
//
//	go run ./examples/lockfreestack
package main

import (
	"fmt"
	"log"

	"atomemu/internal/harness"
)

func main() {
	const (
		threads = 16
		ops     = 200_000 // pop+push pairs in total
		nodes   = 8
	)
	fmt.Printf("lock-free stack: %d threads, %d operations, %d nodes\n\n", threads, ops, nodes)

	// PICO-CAS (QEMU-4.1's scheme): retry until the race fires, as the
	// paper's run crashes within 2 seconds.
	fmt.Println("--- pico-cas (QEMU-4.1) ---")
	for attempt := 1; ; attempt++ {
		run, err := harness.RunStack("pico-cas", threads, ops, nodes)
		if err != nil {
			log.Fatal(err)
		}
		if run.Report.Corrupted() || run.Crashed {
			fmt.Printf("attempt %d: ABA corruption! %s\n", attempt, run.Report)
			if run.Crashed {
				fmt.Printf("guest crashed: %s\n", run.Reason)
			}
			fmt.Printf("%.1f%% of nodes damaged or lost\n\n", run.CorruptPct)
			break
		}
		if attempt >= 10 {
			fmt.Println("no corruption in 10 attempts (rare) — rerun the example")
			break
		}
	}

	// Every corrected scheme keeps the stack intact.
	for _, scheme := range []string{"hst", "hst-weak", "pst", "pico-st"} {
		run, err := harness.RunStack(scheme, threads, ops, nodes)
		if err != nil {
			log.Fatal(err)
		}
		status := "intact"
		if run.Report.Corrupted() || run.Crashed {
			status = "CORRUPTED (bug!)"
		}
		fmt.Printf("--- %-8s --- stack %s (%s)\n", scheme, status, run.Report)
	}
}
