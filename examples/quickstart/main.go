// Quickstart: assemble a multi-threaded GA32 guest program that increments
// a shared counter with LDREX/STREX, run it under the paper's HST scheme,
// and read the result back out of guest memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"atomemu/internal/asm"
	"atomemu/internal/engine"
)

const src = `
; Each worker adds r0 (its iteration count) to a shared counter,
; one LL/SC increment at a time.
.org 0x10000
.entry worker
worker:
    mov r9, r0          ; iterations
loop:
    ldr r4, =counter
retry:
    ldrex r1, [r4]      ; LL
    addi r1, r1, #1
    strex r2, r1, [r4]  ; SC: r2 = 0 on success
    cmpi r2, #0
    bne retry
    subsi r9, r9, #1
    bne loop
    movi r0, #0
    svc #1              ; exit
.align 1024
counter: .word 0
`

func main() {
	im, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	// Build a machine with the HST scheme — the paper's fast, correct,
	// portable answer to LL/SC-on-CAS emulation.
	m, err := engine.NewMachine(engine.DefaultConfig("hst"))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		log.Fatal(err)
	}

	const threads, iters = 8, 10_000
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	counter, fault := m.Mem().ReadWordPriv(im.MustSymbol("counter"))
	if fault != nil {
		log.Fatal(fault)
	}
	st := m.AggregateStats()
	fmt.Printf("counter = %d (want %d)\n", counter, threads*iters)
	fmt.Printf("executed %d guest instructions, %d LL/SC pairs (%d SC retries)\n",
		st.GuestInstrs, st.LLs, st.SCFails)
	fmt.Printf("virtual time: %d cycles across %d threads\n", m.VirtualTime(), threads)
	if counter != threads*iters {
		log.Fatal("LOST UPDATES — the scheme failed")
	}
	fmt.Println("no lost updates: HST preserved LL/SC atomicity")
}
