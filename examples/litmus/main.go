// Replay the paper's §IV-A interleavings (Seq1–Seq4 plus the definitional
// weak/strong sequences) deterministically against all eight schemes and
// print the resulting atomicity classification — the measured version of
// the paper's Table II atomicity column.
//
//	go run ./examples/litmus
package main

import (
	"fmt"
	"log"
	"os"

	"atomemu/internal/harness"
	"atomemu/internal/litmus"
)

func main() {
	if err := harness.LitmusMatrix(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Zoom into Seq2, the ABA dance, under the broken and a fixed scheme.
	fmt.Println("\nSeq2 (the ABA dance), step by step:")
	seq := litmus.StandardSequences()[1]
	for _, ev := range seq.Events {
		fmt.Printf("  T%d: %s", ev.T, ev.Op)
		if ev.Op != litmus.OpLL {
			fmt.Printf("(%#x)", ev.Val)
		}
		fmt.Println()
	}
	for _, scheme := range []string{"pico-cas", "hst"} {
		res, err := litmus.Run(scheme, seq)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "correctly FAILED — no ABA"
		if res.FinalSCSuccess {
			verdict = "wrongly SUCCEEDED — the ABA problem"
		}
		fmt.Printf("under %-8s the final SC %s (x = %#x)\n", scheme, verdict, res.FinalValue)
	}
}
