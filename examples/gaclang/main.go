// The paper's lock-free-stack experiment written in GAC, atomemu's C-like
// guest language, compiled to GA32 on the fly and run under two schemes:
// QEMU-4.1's pico-cas (which the ABA problem eventually corrupts) and HST.
//
//	go run ./examples/gaclang
package main

import (
	"fmt"
	"log"

	"atomemu/internal/engine"
	"atomemu/internal/gac"
)

const src = `
// Treiber stack over 16 reusable nodes (paper Fig. 3, in GAC).
var top;
var nodes[32];

func push(node) {
    var old = ll(&top);
    *node = old;
    while (sc(&top, node)) {
        old = ll(&top);
        *node = old;
    }
}

func pop() {
    while (1) {
        var old = ll(&top);
        if (old == 0) { clrex(); return 0; }
        var next = *old;
        if (sc(&top, next) == 0) { return old; }
    }
}

func worker(n) {
    var i = 0;
    while (i < n) {
        var node = pop();
        if (node == 0) { yield(); continue; }
        *(node + 4) = *(node + 4) + 1;
        push(node);
        i = i + 1;
    }
}

func main(n) {
    var i = 0;
    top = 0;
    while (i < 16) { push(&nodes[i * 2]); i = i + 1; }
    var t1 = spawn(worker, n);
    var t2 = spawn(worker, n);
    var t3 = spawn(worker, n);
    worker(n);
    join(t1); join(t2); join(t3);
    // Audit the stack: count reachable nodes, flag ABA self-loops.
    var count = 0;
    var cur = top;
    while (cur != 0) {
        if (*cur == cur) { print(777777); exit(2); }
        count = count + 1;
        if (count > 16) { print(888888); exit(3); }
        cur = *cur;
    }
    print(count);
    exit(0);
}`

func runOnce(scheme string, ops uint32) (out []uint32, err error) {
	im, err := gac.Compile(src)
	if err != nil {
		return nil, err
	}
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 2_000_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(im); err != nil {
		return nil, err
	}
	if _, err := m.Start(im.Entry, ops); err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m.Output(), nil
}

func main() {
	const ops = 20000
	fmt.Println("Treiber stack in GAC, 4 guest threads x", ops, "pop/push pairs")

	fmt.Println("\n--- pico-cas (QEMU-4.1) ---")
	corrupted := false
	for attempt := 1; attempt <= 10 && !corrupted; attempt++ {
		out, err := runOnce("pico-cas", ops)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case len(out) == 1 && out[0] == 777777:
			fmt.Printf("attempt %d: ABA! a node's next points to itself\n", attempt)
			corrupted = true
		case len(out) == 1 && out[0] == 888888:
			fmt.Printf("attempt %d: ABA! the stack contains a cycle\n", attempt)
			corrupted = true
		case len(out) == 1 && out[0] < 16:
			fmt.Printf("attempt %d: ABA! only %d of 16 nodes still reachable\n", attempt, out[0])
			corrupted = true
		default:
			fmt.Printf("attempt %d: survived (16 nodes)\n", attempt)
		}
	}
	if !corrupted {
		fmt.Println("(no corruption this time — the race needs scheduler luck; rerun)")
	}

	fmt.Println("\n--- hst ---")
	out, err := runOnce("hst", ops)
	if err != nil {
		log.Fatal(err)
	}
	if len(out) == 1 && out[0] == 16 {
		fmt.Println("stack intact: all 16 nodes reachable, no self-loops")
	} else {
		fmt.Println("UNEXPECTED:", out)
	}
}
