// Run one miniparsec workload (the synthetic PARSEC stand-ins of the
// paper's evaluation) under any scheme and print the Fig. 12-style
// execution-time breakdown.
//
//	go run ./examples/miniparsec [-program fluidanimate] [-scheme hst] [-threads 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"atomemu/internal/harness"
	"atomemu/internal/stats"
	"atomemu/internal/workload"
)

func main() {
	program := flag.String("program", "fluidanimate", "workload name")
	scheme := flag.String("scheme", "hst", "emulation scheme")
	threads := flag.Int("threads", 8, "worker threads")
	scale := flag.Float64("scale", 0.25, "work scale")
	flag.Parse()

	spec, ok := workload.SpecByName(*program)
	if !ok {
		var names []string
		for _, s := range workload.Specs() {
			names = append(names, s.Name)
		}
		log.Fatalf("unknown program %q; have %v", *program, names)
	}
	fmt.Printf("%s: %s-kind atomics every %d items, %d locks, barriers every %d\n",
		spec.Name, spec.Kind, spec.AtomicEvery, spec.LockCells, spec.BarrierEvery)

	res, err := harness.RunWorkload(harness.RunConfig{
		Program: *program, Scheme: *scheme, Threads: *threads, Scale: *scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Crashed {
		fmt.Printf("CRASHED: %s\n", res.CrashReason)
		return
	}
	st := res.Stats
	fmt.Printf("\n%d guest instructions, %d stores, %d LL/SC (store:LLSC = %.0f)\n",
		st.GuestInstrs, st.Stores, st.LLs, st.StoreToLLSCRatio())
	fmt.Printf("virtual time %d cycles, wall %s\n\n", res.VirtualTime, res.WallTime)

	fmt.Println("cycle breakdown (the paper's Fig. 12 bar):")
	frac := st.Breakdown()
	for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
		bar := ""
		for i := 0; i < int(frac[comp]*50); i++ {
			bar += "#"
		}
		fmt.Printf("  %-11s %6.1f%% %s\n", comp, 100*frac[comp], bar)
	}
	if st.PageFaults > 0 {
		fmt.Printf("\npage faults: %d (%d false sharing)\n", st.PageFaults, st.FalseSharing)
	}
	if st.HTMCommits+st.HTMAborts > 0 {
		fmt.Printf("htm: %d commits / %d aborts\n", st.HTMCommits, st.HTMAborts)
	}
}
