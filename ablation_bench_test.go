package atomemu

import (
	"fmt"
	"testing"

	"atomemu/internal/engine"
	"atomemu/internal/harness"
	"atomemu/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports virtual time so the effect of one knob is visible in isolation.

func runWith(b *testing.B, prog string, threads int, mutate func(*engine.Config)) uint64 {
	b.Helper()
	spec, ok := workload.SpecByName(prog)
	if !ok {
		b.Fatalf("no program %s", prog)
	}
	p, err := spec.Build(0x10000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig("hst")
	cfg.MaxGuestInstrs = 2_000_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := engine.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadImage(p.Image); err != nil {
		b.Fatal(err)
	}
	items := spec.ItemsPerThread(threads, benchScale)
	if spec.BarrierEvery > 0 {
		m.InitBarrier(p.BarrierCell, threads)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(p.Worker, uint32(items)); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	if err := p.Verify(m.Mem(), threads, items); err != nil {
		b.Fatal(err)
	}
	return m.VirtualTime()
}

// BenchmarkAblationRuleFusion measures the paper's §VI rule-based
// translation: fused host atomics vs the full HST path on the
// atomic-intensive programs.
func BenchmarkAblationRuleFusion(b *testing.B) {
	for _, prog := range []string{"swaptions", "fluidanimate", "blackscholes"} {
		for _, fuse := range []bool{false, true} {
			name := fmt.Sprintf("%s/fuse=%v", prog, fuse)
			b.Run(name, func(b *testing.B) {
				var vt uint64
				for i := 0; i < b.N; i++ {
					vt = runWith(b, prog, 8, func(c *engine.Config) { c.FuseAtomics = fuse })
				}
				b.ReportMetric(float64(vt), "vcycles")
			})
		}
	}
}

// BenchmarkAblationHashBits sweeps the HST table size: smaller tables mean
// more collisions, i.e. more spurious SC retries.
func BenchmarkAblationHashBits(b *testing.B) {
	for _, bits := range []uint{8, 12, 14, 18} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var vt uint64
			for i := 0; i < b.N; i++ {
				vt = runWith(b, "fluidanimate", 8, func(c *engine.Config) { c.HashBits = bits })
			}
			b.ReportMetric(float64(vt), "vcycles")
		})
	}
}

// BenchmarkAblationOptimizer measures the IR pass pipeline's effect on
// emulation cost (IR ops retired per run).
func BenchmarkAblationOptimizer(b *testing.B) {
	for _, noOpt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimize=%v", !noOpt), func(b *testing.B) {
			var vt uint64
			for i := 0; i < b.N; i++ {
				vt = runWith(b, "x264", 4, func(c *engine.Config) { c.NoOptimize = noOpt })
			}
			b.ReportMetric(float64(vt), "vcycles")
		})
	}
}

// BenchmarkAblationTBSize sweeps the translation-block cap: shorter blocks
// mean more lookups and exclusive-checkpoint polls.
func BenchmarkAblationTBSize(b *testing.B) {
	for _, size := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("tb=%d", size), func(b *testing.B) {
			var vt uint64
			for i := 0; i < b.N; i++ {
				vt = runWith(b, "freqmine", 4, func(c *engine.Config) { c.MaxGuestInstrsPerTB = size })
			}
			b.ReportMetric(float64(vt), "vcycles")
		})
	}
}

// BenchmarkAblationPSTMPK is the §VI discussion quantified: the MPK variant
// against classic PST and PST-REMAP on the false-sharing program.
func BenchmarkAblationPSTMPK(b *testing.B) {
	for _, scheme := range []string{"pst", "pst-remap", "pst-mpk"} {
		b.Run(scheme, func(b *testing.B) {
			var vt uint64
			for i := 0; i < b.N; i++ {
				res, err := harness.RunWorkload(harness.RunConfig{
					Program: "bodytrack", Scheme: scheme, Threads: 8, Scale: benchScale,
				})
				if err != nil {
					b.Fatal(err)
				}
				vt = res.VirtualTime
			}
			b.ReportMetric(float64(vt), "vcycles")
		})
	}
}
